"""Tests for the content-addressed serving cache: digest, keying, LRU.

The serving cache (`repro.serve.store.ResultStore`) is only sound if its
key components hold their invariants: the structural digest must see
through node numbering / names / dangling logic but *not* through
function changes; script normalization must merge alias spellings but
*not* flag changes; the registry version must fence entries to one
command surface.  The LRU bounds (store entries, engine `ResynthCache`
layers) guard the long-lived service against unbounded growth.
"""

import pytest

from repro import obs
from repro.aig import AIG, structural_digest
from repro.aig.io_bench import from_text, to_text
from repro.engine import ResynthCache
from repro.errors import ReproError
from repro.opt import OptSession, run_flow
from repro.opt.registry import CommandSpec, default_registry
from repro.serve import CachedResult, ResultStore

from .util import random_aig


def _pair_tree(order: str) -> AIG:
    """(a&b) & (c&d), with the two inner ANDs built in ``order``."""
    g = AIG(f"pairs-{order}")
    a, b, c, d = (g.add_pi() for _ in range(4))
    if order == "ab-first":
        x = g.add_and(a, b)
        y = g.add_and(c, d)
    else:
        y = g.add_and(c, d)
        x = g.add_and(a, b)
    g.add_po(g.add_and(x, y))
    return g


class TestStructuralDigest:
    def test_construction_order_irrelevant(self):
        assert structural_digest(_pair_tree("ab-first")) == structural_digest(
            _pair_tree("cd-first")
        )

    def test_clone_and_reparse_preserve_digest(self):
        g = random_aig(6, 80, 3, seed=11, name="orig")
        d = structural_digest(g)
        assert structural_digest(g.clone(name="other")) == d
        assert structural_digest(from_text(to_text(g), name="reparsed")) == d
        assert g.structural_digest() == d  # the method is the function

    def test_dangling_logic_invisible(self):
        g = random_aig(6, 60, 2, seed=12)
        d = structural_digest(g)
        pis = g.pis
        g.add_and(pis[0], pis[1] ^ 1)  # no PO reaches it
        assert structural_digest(g) == d

    def test_pi_identity_and_phase_matter(self):
        ga = AIG("pi-a")
        a0, a1 = ga.add_pi(), ga.add_pi()
        ga.add_po(ga.add_and(a0, a1 ^ 1))  # a & ~b
        gb = AIG("pi-b")
        b0, b1 = gb.add_pi(), gb.add_pi()
        gb.add_po(gb.add_and(b0 ^ 1, b1))  # ~a & b: PI roles swapped
        assert structural_digest(ga) != structural_digest(gb)

        gc = ga.clone()
        gc.set_po(0, gc.pos[0] ^ 1)  # same cone, inverted output
        assert structural_digest(gc) != structural_digest(ga)


class TestStoreKeying:
    def test_alias_spellings_share_a_key(self):
        store = ResultStore()
        g = random_aig(6, 50, 2, seed=13)
        assert store.key(g, "f; fz") == store.key(g, "rf; rfz")
        assert store.key(g, "rf;rfz") == store.key(g, "rf; rfz")

    def test_script_and_flag_changes_miss(self):
        store = ResultStore()
        g = random_aig(6, 50, 2, seed=13)
        base = store.key(g, "rf")
        assert store.key(g, "rf -l") != base
        assert store.key(g, "rw") != base

    def test_structural_equivalents_share_a_key(self):
        store = ResultStore()
        g = random_aig(6, 50, 2, seed=14, name="first")
        renamed = from_text(to_text(g), name="totally-different")
        assert store.key(g, "b; rf") == store.key(renamed, "b; rf")

    def test_registry_version_fences_keys(self):
        g = random_aig(6, 50, 2, seed=15)
        patched = default_registry().copy()
        patched.register(
            CommandSpec(name="zzz", execute=lambda g, ctx, flags: (g, None))
        )
        assert patched.version != default_registry().version
        old = ResultStore(registry=default_registry())
        new = ResultStore(registry=patched)
        assert old.key(g, "rf") != new.key(g, "rf")

    def test_unresolvable_script_raises(self):
        store = ResultStore()
        with pytest.raises(ReproError):
            store.key(random_aig(5, 30, 2, seed=16), "not-a-command")


def _entry(tag: str) -> CachedResult:
    return CachedResult(
        bench_text=f"# {tag}\n", n_ands=1, level=1, n_ands_before=2, level_before=2
    )


class TestStoreLRU:
    def test_eviction_order_and_counters(self):
        store = ResultStore(max_entries=2)
        keys = [(f"digest{i}", "rf", "v") for i in range(3)]
        store.insert(keys[0], _entry("k0"))
        store.insert(keys[1], _entry("k1"))
        assert store.lookup(keys[0]) is not None  # refresh k0 to MRU
        store.insert(keys[2], _entry("k2"))  # evicts k1, not k0
        assert keys[1] not in store and keys[0] in store and keys[2] in store
        assert store.evictions == 1 and len(store) == 2
        assert store.lookup(keys[1]) is None
        assert store.hits == 1 and store.misses == 1
        assert store.hit_rate == 0.5

    def test_hit_returns_inserted_bytes_verbatim(self):
        store = ResultStore()
        g = random_aig(6, 60, 2, seed=17)
        out, _ = run_flow(g.clone(), "b; rf")
        text = to_text(out)
        key = store.key(g, "b; rf")
        store.insert(
            key,
            CachedResult(
                bench_text=text,
                n_ands=out.n_ands,
                level=out.max_level(),
                n_ands_before=g.n_ands,
                level_before=g.max_level(),
            ),
        )
        hit = store.get(from_text(to_text(g), name="resubmitted"), "b; rf")
        assert hit is not None and hit.bench_text == text


class TestStoreSpill:
    def test_insert_writes_one_spill_file(self, tmp_path):
        store = ResultStore(spill_dir=tmp_path)
        key = ("digest0", "rf", "v")
        store.insert(key, _entry("k0"))
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1 and store.spill_writes == 1
        # In-memory lookups never touch the disk tier.
        assert store.lookup(key) == _entry("k0")
        assert store.spill_loads == 0

    def test_fresh_store_reloads_from_spill_as_a_hit(self, tmp_path):
        old = ResultStore(spill_dir=tmp_path)
        key = ("digest1", "rf", "v")
        old.insert(key, _entry("k1"))
        # A restarted service: empty memory, same spill directory.
        fresh = ResultStore(spill_dir=tmp_path)
        assert len(fresh) == 0
        hit = fresh.lookup(key)
        assert hit == _entry("k1")
        assert fresh.spill_loads == 1 and fresh.hits == 1 and fresh.misses == 0
        assert key in fresh  # the reload re-entered the memory LRU
        fresh.lookup(key)
        assert fresh.spill_loads == 1  # second hit is pure memory

    def test_eviction_never_deletes_spill_files(self, tmp_path):
        store = ResultStore(max_entries=1, spill_dir=tmp_path)
        keys = [(f"digest{i}", "rf", "v") for i in range(2)]
        store.insert(keys[0], _entry("k0"))
        store.insert(keys[1], _entry("k1"))  # evicts keys[0] from memory
        assert keys[0] not in store and store.evictions == 1
        assert len(list(tmp_path.glob("*.json"))) == 2
        # The evicted entry comes back from disk...
        assert store.lookup(keys[0]) == _entry("k0")
        assert store.spill_loads == 1
        # ...at the cost of evicting keys[1], which also reloads.
        assert store.lookup(keys[1]) == _entry("k1")
        assert store.spill_loads == 2

    def test_corrupt_and_alien_spill_files_are_misses(self, tmp_path):
        store = ResultStore(spill_dir=tmp_path)
        key = ("digest2", "rf", "v")
        store.insert(key, _entry("k2"))
        path = store._spill_path(key)
        path.write_text("{not json", encoding="utf-8")
        fresh = ResultStore(spill_dir=tmp_path)
        assert fresh.lookup(key) is None and fresh.misses == 1
        # A file whose embedded key disagrees with the address is alien
        # (collision / tampering) and must not be trusted either.
        store._spill_write(("other", "rw", "v"), _entry("k3"))
        alien = store._spill_path(("other", "rw", "v"))
        path.write_bytes(alien.read_bytes())
        assert fresh.lookup(key) is None and fresh.misses == 2

    def test_no_spill_dir_means_no_disk_io(self, tmp_path):
        store = ResultStore()
        store.insert(("digest3", "rf", "v"), _entry("k4"))
        assert store.spill_writes == 0 and store.spill_loads == 0
        assert list(tmp_path.iterdir()) == []


class TestEngineCacheLRU:
    def test_exact_layer_evicts_lru_and_counts(self):
        before = obs.metrics().total("engine_cache_evictions_total")
        cache = ResynthCache(max_entries=2)
        cache[(0b0001, 5)] = ("t0", False)
        cache[(0b0010, 5)] = ("t1", False)
        assert cache.get((0b0001, 5)) is not None  # refresh to MRU
        cache[(0b0100, 5)] = ("t2", False)  # evicts (0b0010, 5)
        assert cache.get((0b0010, 5)) is None
        assert cache.get((0b0001, 5)) is not None
        assert obs.metrics().total("engine_cache_evictions_total") - before == 1

    def test_unbounded_by_default(self):
        cache = ResynthCache()
        for i in range(300):
            cache[(i, 5)] = ("t", False)
        assert len(cache) == 300

    def test_npn_view_inherits_bound(self):
        assert ResynthCache(max_entries=7).npn_view().max_entries == 7

    def test_session_threads_cache_entries(self):
        with OptSession(cache_entries=3) as session:
            assert session.resynth_cache.max_entries == 3
        with OptSession() as session:
            assert session.resynth_cache.max_entries is None
