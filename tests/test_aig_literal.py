"""Tests for AIGER-style literal helpers."""

from repro.aig import (
    CONST0,
    CONST1,
    lit_is_compl,
    lit_node,
    lit_not,
    lit_regular,
    lit_with_compl,
    lit_xor_compl,
    make_lit,
)


def test_constants():
    assert CONST0 == 0
    assert CONST1 == 1
    assert lit_not(CONST0) == CONST1


def test_make_and_decompose():
    for node in (0, 1, 7, 123456):
        for compl in (False, True):
            lit = make_lit(node, compl)
            assert lit_node(lit) == node
            assert lit_is_compl(lit) is compl


def test_not_is_involution():
    for lit in range(20):
        assert lit_not(lit_not(lit)) == lit
        assert lit_not(lit) != lit


def test_regular_strips_complement():
    assert lit_regular(7) == 6
    assert lit_regular(6) == 6


def test_with_and_xor_compl():
    assert lit_with_compl(6, True) == 7
    assert lit_with_compl(7, False) == 6
    assert lit_xor_compl(6, True) == 7
    assert lit_xor_compl(7, True) == 6
    assert lit_xor_compl(7, False) == 7
