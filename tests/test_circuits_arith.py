"""Functional tests for the arithmetic generators (small widths, exhaustive)."""

import math

import pytest

from repro.aig import check
from repro.circuits.arith import (
    adder,
    alu,
    divider,
    hypotenuse,
    isqrt,
    log2_approx,
    mac,
    multiplier,
    square,
)
from repro.verify import po_truth_tables


def outputs_at(tables, index):
    return sum((tt >> index & 1) << i for i, tt in enumerate(tables))


def test_adder_exhaustive():
    g = adder(3)
    tables = po_truth_tables(g)
    for x in range(8):
        for y in range(8):
            assert outputs_at(tables, x | (y << 3)) == x + y
    check(g)


def test_multiplier_exhaustive():
    g = multiplier(3)
    assert g.n_pis == 6 and g.n_pos == 6
    tables = po_truth_tables(g)
    for x in range(8):
        for y in range(8):
            assert outputs_at(tables, x | (y << 3)) == x * y
    check(g)


def test_square_exhaustive():
    g = square(4)
    assert g.n_pis == 4 and g.n_pos == 8
    tables = po_truth_tables(g)
    for x in range(16):
        assert outputs_at(tables, x) == x * x
    check(g)


def test_divider_exhaustive():
    g = divider(3)
    assert g.n_pis == 6 and g.n_pos == 6
    tables = po_truth_tables(g)
    for n in range(8):
        for d in range(8):
            value = outputs_at(tables, n | (d << 3))
            q, r = value & 0b111, value >> 3
            if d == 0:
                continue  # division by zero unspecified
            assert q == n // d, f"{n}/{d}"
            assert r == n % d, f"{n}%{d}"
    check(g)


def test_isqrt_exhaustive():
    g = isqrt(3)  # 6-bit radicand -> 3-bit root
    assert g.n_pis == 6 and g.n_pos == 3
    tables = po_truth_tables(g)
    for x in range(64):
        assert outputs_at(tables, x) == math.isqrt(x), f"sqrt({x})"
    check(g)


def test_hypotenuse_exhaustive():
    g = hypotenuse(3)
    assert g.n_pis == 6 and g.n_pos == 4
    tables = po_truth_tables(g)
    for x in range(8):
        for y in range(8):
            expected = math.isqrt(x * x + y * y)
            assert outputs_at(tables, x | (y << 3)) == expected, f"hyp({x},{y})"
    check(g)


def test_log2_monotone_and_integer_part():
    g = log2_approx(8)
    assert g.n_pis == 8 and g.n_pos == 8
    tables = po_truth_tables(g)
    frac_bits = 8 - 3
    for x in range(1, 256):
        value = outputs_at(tables, x)
        int_part = value >> frac_bits
        assert int_part == int(math.log2(x)), f"log2({x})"
    assert outputs_at(tables, 0) == 0
    check(g)


def test_log2_fraction_accuracy():
    g = log2_approx(8)
    tables = po_truth_tables(g)
    frac_bits = 8 - 3
    worst = 0.0
    for x in range(1, 256):
        value = outputs_at(tables, x) / (1 << frac_bits)
        worst = max(worst, abs(value - math.log2(x)))
    assert worst < 0.1, f"worst-case log2 error {worst}"


def test_mac_exhaustive():
    g = mac(2)
    tables = po_truth_tables(g)
    for a in range(4):
        for b in range(4):
            for c in range(4):
                index = a | (b << 2) | (c << 4)
                assert outputs_at(tables, index) == a * b + c
    check(g)


def test_alu_ops():
    g = alu(3)
    tables = po_truth_tables(g)
    reference = [
        lambda a, b: (a + b) & 7,
        lambda a, b: (a - b) & 7,
        lambda a, b: a & b,
        lambda a, b: a | b,
        lambda a, b: a ^ b,
        lambda a, b: int(a < b),
        lambda a, b: (~a) & 7,
        lambda a, b: b,
    ]
    for op in range(8):
        for a in range(8):
            for b in range(8):
                index = a | (b << 3) | (op << 6)
                assert outputs_at(tables, index) == reference[op](a, b), (op, a, b)
    check(g)


@pytest.mark.parametrize("width", [4, 6])
def test_generator_sizes_scale(width):
    small = multiplier(width)
    bigger = multiplier(width * 2)
    assert bigger.n_ands > 3 * small.n_ands  # array multiplier ~ O(w^2)


def test_divider_depth_is_linear():
    d4 = divider(4)
    d8 = divider(8)
    assert d8.max_level() > 1.7 * d4.max_level()
