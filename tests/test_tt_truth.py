"""Tests for truth-table primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TruthTableError
from repro.tt import (
    cofactor0,
    cofactor1,
    depends_on,
    expand_tt,
    is_const0,
    is_const1,
    ones_count,
    tt_from_hex,
    tt_not,
    tt_support,
    tt_to_hex,
)
from repro.aig import full_mask, var_mask


def test_cofactors_of_variable():
    n = 3
    tt = var_mask(1, n)  # f = b
    assert cofactor0(tt, 1, n) == 0
    assert cofactor1(tt, 1, n) == full_mask(n)
    assert cofactor0(tt, 0, n) == tt  # independent of a


def test_depends_on_and_support():
    n = 3
    tt = var_mask(0, n) & var_mask(2, n)  # a & c
    assert depends_on(tt, 0, n)
    assert not depends_on(tt, 1, n)
    assert tt_support(tt, n) == [0, 2]


def test_counting_and_constants():
    n = 2
    assert ones_count(0b1000, n) == 1
    assert is_const0(0, n)
    assert is_const1(0b1111, n)
    assert not is_const1(0b0111, n)
    assert tt_not(0b1010, n) == 0b0101


def test_hex_roundtrip():
    n = 4
    tt = 0xBEEF
    assert tt_to_hex(tt, n) == "beef"
    assert tt_from_hex("beef", n) == tt
    with pytest.raises(TruthTableError):
        tt_from_hex("1beef", n)


def test_expand_tt_identity_and_permute():
    n = 2
    tt = 0b1000  # a & b
    assert expand_tt(tt, [0, 1], n, n) == tt
    # Swap variables: AND is symmetric, unchanged.
    assert expand_tt(tt, [1, 0], n, n) == tt
    # f = a (var 0) re-expressed over 3 vars mapping a -> var 2.
    assert expand_tt(0b10, [2], 1, 3) == var_mask(2, 3)


@given(st.integers(0, 255), st.integers(0, 2))
def test_shannon_expansion(tt, var):
    n = 3
    c0, c1 = cofactor0(tt, var, n), cofactor1(tt, var, n)
    mask = var_mask(var, n)
    reconstructed = (c0 & ~mask & full_mask(n)) | (c1 & mask)
    assert reconstructed == tt


@given(st.integers(0, 2**16 - 1))
def test_cofactors_idempotent(tt):
    n = 4
    assert cofactor0(cofactor0(tt, 2, n), 2, n) == cofactor0(tt, 2, n)
    assert not depends_on(cofactor1(tt, 2, n), 2, n)
