"""Tests for the invariant checker and strash/cleanup utilities."""

from repro.aig import AIG, check, cleanup, is_valid, lit_node, strash

from .util import po_truth_tables, random_aig


def test_valid_graph_passes():
    g = random_aig(5, 30, 3, seed=6)
    check(g)
    assert is_valid(g)


def test_corruption_detected_refs():
    g = random_aig(4, 10, 2, seed=6)
    g._refs[g.and_ids()[0]] += 1
    assert not is_valid(g)


def test_corruption_detected_level():
    g = random_aig(4, 10, 2, seed=6)
    g._level[g.and_ids()[-1]] += 5
    assert not is_valid(g)


def test_corruption_detected_strash():
    g = random_aig(4, 10, 2, seed=6)
    node = g.and_ids()[0]
    key = g.fanin_lits(node)
    del g._strash[key]
    assert not is_valid(g)


def test_strash_drops_unreachable_logic():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    g.add_and(a, c)  # dangling
    g.add_po(x)
    h = strash(g)
    assert h.n_ands == 1
    assert po_truth_tables(h)[0] == po_truth_tables(g)[0]
    check(h)


def test_cleanup_in_place():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    g.add_and(g.add_and(a, c), b)  # dangling chain of 2
    g.add_po(x)
    removed = cleanup(g)
    assert removed == 2
    assert g.n_ands == 1
    check(g)


def test_cleanup_noop_on_clean_graph():
    g = random_aig(5, 30, 3, seed=13)
    assert cleanup(g) == 0
