"""Tests for Minato-Morreale ISOP extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TruthTableError
from repro.tt import cube_tt, isop, isop_exact, sop_tt
from repro.aig import full_mask


def test_constants():
    assert isop_exact(0, 3) == []
    assert isop_exact(full_mask(3), 3) == [0]


def test_single_variable():
    n = 2
    cubes = isop_exact(0b1010, n)  # f = a
    assert len(cubes) == 1
    assert sop_tt(cubes, n) == 0b1010


def test_and_or_xor():
    n = 2
    assert len(isop_exact(0b1000, n)) == 1  # a & b: one cube
    assert len(isop_exact(0b1110, n)) == 2  # a + b: two single-literal cubes
    xor_cubes = isop_exact(0b0110, n)
    assert len(xor_cubes) == 2
    assert sop_tt(xor_cubes, n) == 0b0110


def test_majority():
    n = 3
    maj = 0b11101000  # maj(a,b,c)
    cubes = isop_exact(maj, n)
    assert sop_tt(cubes, n) == maj
    assert len(cubes) == 3  # ab + ac + bc


def test_dont_cares_shrink_cover():
    n = 2
    # onset {ab}, dc {a!b}: cover may pick the single-literal cube "a".
    cubes = isop(0b1000, 0b1010, n)
    tt = sop_tt(cubes, n)
    assert tt & 0b1000 == 0b1000  # covers onset
    assert tt & ~0b1010 == 0  # stays within upper bound
    assert len(cubes) == 1


def test_bad_interval_rejected():
    with pytest.raises(TruthTableError):
        isop(0b1111, 0b0111, 2)


@settings(max_examples=300)
@given(st.integers(0, 2**16 - 1))
def test_isop_exact_covers_exactly(tt):
    n = 4
    cubes = isop_exact(tt, n)
    assert sop_tt(cubes, n) == tt


@settings(max_examples=150)
@given(st.integers(0, 2**8 - 1), st.integers(0, 2**8 - 1))
def test_isop_interval_contract(onset, extra):
    n = 3
    upper = onset | extra
    cubes = isop(onset, upper, n)
    tt = sop_tt(cubes, n)
    assert tt & onset == onset
    assert tt & ~upper & full_mask(n) == 0


@settings(max_examples=100)
@given(st.integers(0, 2**16 - 1))
def test_isop_irredundant(tt):
    # Dropping any single cube must uncover part of the onset.
    n = 4
    cubes = isop_exact(tt, n)
    for i in range(len(cubes)):
        rest = cubes[:i] + cubes[i + 1 :]
        assert sop_tt(rest, n) != tt or cube_tt(cubes[i], n) & tt == 0
