"""Tests for the ELF classifier wrapper, operator and pipeline."""

import numpy as np
import pytest

from repro.aig import check
from repro.circuits.arith import adder, multiplier
from repro.elf import (
    ElfClassifier,
    ElfParams,
    collect_dataset,
    compare,
    elf_refactor,
    evaluate_classifier,
    train_leave_one_out,
)
from repro.errors import TrainingError
from repro.ml import MLP, CutDataset, TrainConfig, train_classifier
from repro.verify import equivalent

from .util import random_aig


def constant_classifier(keep_everything=True):
    """A classifier whose output is effectively constant."""
    model = MLP((6, 2, 1), seed=0)
    for w in model.weights:
        w[:] = 0.0
    model.biases[-1][:] = 10.0 if keep_everything else -10.0
    return ElfClassifier(model, threshold=0.5)


def trained_classifier(seed=0):
    graphs = [random_aig(7, 150, 4, seed=s, name=f"g{s}") for s in (1, 2, 3)]
    datasets = {g.name: collect_dataset(g) for g in graphs}
    return train_leave_one_out(
        datasets, "g1", TrainConfig(epochs=5, seed=seed), target_recall=0.95
    )


class TestClassifier:
    def test_parameter_count_paper(self):
        clf = trained_classifier()
        assert clf.n_parameters == 325

    def test_keep_mask_shapes(self):
        clf = constant_classifier(True)
        x = np.random.default_rng(0).uniform(0, 10, size=(7, 6))
        mask = clf.keep_mask(x)
        assert mask.shape == (7,)
        assert mask.all()
        assert not constant_classifier(False).keep_mask(x).any()
        assert clf.keep_mask(np.zeros((0, 6))).shape == (0,)

    def test_input_dimension_enforced(self):
        with pytest.raises(TrainingError):
            ElfClassifier(MLP((5, 2, 1)))

    def test_save_load_roundtrip(self, tmp_path):
        clf = trained_classifier()
        path = tmp_path / "clf.npz"
        clf.save(path)
        loaded = ElfClassifier.load(path)
        x = np.random.default_rng(1).uniform(0, 20, size=(9, 6))
        assert np.allclose(clf.predict_proba(x), loaded.predict_proba(x))
        assert loaded.threshold == clf.threshold


class TestOperator:
    def test_keep_all_equals_baseline_quality(self):
        g = random_aig(7, 150, 4, seed=10)
        reference = g.clone()
        baseline = g.clone()
        from repro.opt import refactor

        base_stats = refactor(baseline)
        elf_stats = elf_refactor(g, constant_classifier(True))
        check(g)
        assert equivalent(reference, g)
        assert g.n_ands == baseline.n_ands
        assert elf_stats.pruned == 0
        assert elf_stats.commits == base_stats.commits

    def test_prune_all_does_nothing_fast(self):
        g = random_aig(7, 150, 4, seed=11)
        before = g.n_ands
        stats = elf_refactor(g, constant_classifier(False))
        assert g.n_ands == before
        assert stats.commits == 0
        assert stats.pruned == stats.nodes_visited

    def test_function_preserved_with_trained_classifier(self):
        clf = trained_classifier()
        for seed in (20, 21):
            g = random_aig(7, 150, 4, seed=seed)
            reference = g.clone()
            before = g.n_ands
            elf_refactor(g, clf)
            check(g)
            assert equivalent(reference, g)
            assert g.n_ands <= before

    def test_streaming_mode_works(self):
        # Batched mode classifies on the *initial* graph's features and can
        # go stale after commits (paper SS III-B: costs runtime, not area);
        # streaming sees fresh features, so decisions may differ slightly.
        clf = trained_classifier()
        g1 = random_aig(7, 120, 4, seed=30)
        g2 = g1.clone()
        reference = g1.clone()
        s_batched = elf_refactor(g1, clf, ElfParams(batched=True))
        s_stream = elf_refactor(g2, clf, ElfParams(batched=False))
        check(g1)
        check(g2)
        assert equivalent(reference, g1)
        assert equivalent(reference, g2)
        assert s_batched.pruned > 0
        assert s_stream.pruned > 0
        assert s_stream.time_inference > 0

    def test_collector_sees_survivors_only(self):
        clf = trained_classifier()
        g = random_aig(7, 120, 4, seed=31)
        records = []
        stats = elf_refactor(g, clf, collector=lambda f, c: records.append((f, c)))
        assert len(records) == stats.nodes_visited - stats.pruned


class TestPipeline:
    def test_collect_dataset_leaves_graph_untouched(self):
        g = random_aig(7, 120, 4, seed=40)
        before = g.n_ands
        ds = collect_dataset(g)
        assert g.n_ands == before
        assert len(ds) > 0
        assert ds.name == g.name

    def test_leave_one_out_excludes_test(self):
        datasets = {
            "a": CutDataset(np.random.rand(50, 6), np.random.rand(50) < 0.2, "a"),
            "b": CutDataset(np.random.rand(50, 6), np.random.rand(50) < 0.2, "b"),
        }
        clf = train_leave_one_out(datasets, "a", TrainConfig(epochs=2))
        assert clf.n_parameters == 325
        with pytest.raises(TrainingError):
            train_leave_one_out(datasets, "zzz")
        with pytest.raises(TrainingError):
            train_leave_one_out({"only": datasets["a"]}, "only")

    def test_evaluate_classifier_counts(self):
        ds = CutDataset(np.random.rand(40, 6) * 5, np.zeros(40))
        c = evaluate_classifier(ds, constant_classifier(False))
        assert c.tn == 40 and c.tp == 0
        assert c.accuracy == 1.0

    def test_compare_row(self):
        clf = trained_classifier()
        g = adder(8)
        g.name = "adder8"
        row = compare(g, clf)
        assert row.design == "adder8"
        assert row.baseline_runtime > 0 and row.elf_runtime > 0
        assert row.speedup > 0
        assert row.elf_ands >= row.baseline_ands  # pruning can only miss gains
        assert abs(row.and_diff_pct) < 50
        assert 0 <= row.prune_fraction <= 1

    def test_compare_elf_twice(self):
        clf = trained_classifier()
        g = multiplier(5)
        row1 = compare(g, clf, elf_applications=1)
        row2 = compare(g, clf, elf_applications=2)
        assert row2.elf_ands <= row1.elf_ands  # second pass can only help
        assert row2.elf_runtime >= row1.elf_runtime * 0.5
