"""Tests for NPN canonicalization of 4-variable functions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import (
    apply_transform,
    enumerate_npn_classes,
    invert_transform,
    npn_canonize,
    npn_orbit,
)


def test_identity_transform():
    identity = ((0, 1, 2, 3), 0, False)
    for tt in (0x0000, 0xFFFF, 0x8888, 0xBEEF):
        assert apply_transform(tt, identity) == tt


def test_output_flip():
    t = ((0, 1, 2, 3), 0, True)
    assert apply_transform(0x0000, t) == 0xFFFF
    assert apply_transform(0xBEEF, t) == 0xBEEF ^ 0xFFFF


def test_input_permutation():
    # f = x0 over 4 vars has tt 0xAAAA; permuting x0<->x1 gives x1 = 0xCCCC.
    t = ((1, 0, 2, 3), 0, False)
    assert apply_transform(0xAAAA, t) == 0xCCCC


def test_input_flip():
    # flipping x0: f = x0 becomes !x0
    t = ((0, 1, 2, 3), 0b0001, False)
    assert apply_transform(0xAAAA, t) == 0x5555


@settings(max_examples=200)
@given(st.integers(0, 0xFFFF))
def test_invert_transform_roundtrip(tt):
    rng = random.Random(tt)
    perm = tuple(rng.sample(range(4), 4))
    transform = (perm, rng.randrange(16), bool(rng.randrange(2)))
    transformed = apply_transform(tt, transform)
    assert apply_transform(transformed, invert_transform(transform)) == tt


@settings(max_examples=100)
@given(st.integers(0, 0xFFFF))
def test_canonize_reconstructs(tt):
    canon, transform = npn_canonize(tt)
    assert apply_transform(canon, transform) == tt
    assert canon <= tt


@settings(max_examples=50)
@given(st.integers(0, 0xFFFF))
def test_canonize_invariant_on_orbit(tt):
    canon, _ = npn_canonize(tt)
    rng = random.Random(tt)
    perm = tuple(rng.sample(range(4), 4))
    transform = (perm, rng.randrange(16), bool(rng.randrange(2)))
    other = apply_transform(tt, transform)
    canon2, _ = npn_canonize(other)
    assert canon2 == canon


def test_orbit_contains_self_and_complement():
    orbit = npn_orbit(0x8000)
    assert 0x8000 in orbit
    assert (0x8000 ^ 0xFFFF) in orbit


@pytest.mark.slow
def test_222_npn_classes():
    classes = enumerate_npn_classes()
    assert len(classes) == 222
    # Every representative is the minimum of its own orbit.
    for rep in random.Random(0).sample(classes, 20):
        assert rep == min(npn_orbit(rep))
