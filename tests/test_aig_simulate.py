"""Tests for bit-parallel simulation and cone truth tables."""

import numpy as np
import pytest

from repro.aig import AIG, cone_truth, full_mask, lit_node, lit_not, simulate, var_mask
from repro.errors import TruthTableError

from .util import po_truth_tables, random_aig


def test_var_mask_patterns():
    assert var_mask(0, 2) == 0b1010
    assert var_mask(1, 2) == 0b1100
    assert var_mask(0, 3) == 0xAA
    assert var_mask(1, 3) == 0xCC
    assert var_mask(2, 3) == 0xF0
    assert full_mask(3) == 0xFF


def test_var_mask_out_of_range():
    with pytest.raises(TruthTableError):
        var_mask(3, 3)


def test_cone_truth_simple_gates():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    o = g.add_or(a, b)
    assert cone_truth(g, lit_node(x), [lit_node(a), lit_node(b)]) == 0b1000
    # OR is complemented AND; table of the underlying node is NOR.
    assert cone_truth(g, lit_node(o), [lit_node(a), lit_node(b)]) == 0b0001


def test_cone_truth_of_leaf_and_const():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    leaves = [lit_node(a), lit_node(b)]
    assert cone_truth(g, lit_node(a), leaves) == 0b1010
    assert cone_truth(g, 0, leaves) == 0


def test_cone_truth_rejects_uncovered_cut():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    with pytest.raises(TruthTableError):
        # cut {a, c} does not cover b
        cone_truth(g, lit_node(y), [lit_node(a), lit_node(c)])


def test_cone_truth_respects_cut_boundary():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    # With x as a leaf, y is just AND(var0, var1) in terms of (x, c).
    assert cone_truth(g, lit_node(y), [lit_node(x), lit_node(c)]) == 0b1000


def test_simulate_matches_truth_tables():
    g = random_aig(6, 50, 4, seed=9)
    truths = po_truth_tables(g)
    # Exhaustive simulation: one word covers all 64 input combinations.
    n = g.n_pis
    pi_values = np.array(
        [[var_mask(i, n)] for i in range(n)], dtype=np.uint64
    )
    out = simulate(g, pi_values)
    for k in range(g.n_pos):
        assert int(out[k, 0]) == truths[k]


def test_simulate_random_shape_and_determinism():
    g = random_aig(5, 30, 3, seed=1)
    out1 = simulate(g, n_words=2, seed=42)
    out2 = simulate(g, n_words=2, seed=42)
    assert out1.shape == (3, 2)
    assert np.array_equal(out1, out2)


def test_simulate_rejects_bad_shape():
    g = random_aig(5, 10, 2, seed=1)
    with pytest.raises(TruthTableError):
        simulate(g, np.zeros((3, 1), dtype=np.uint64))


def test_po_inversion_handled():
    g = AIG()
    a = g.add_pi()
    g.add_po(lit_not(a))
    pi_values = np.array([[np.uint64(0xAA)]], dtype=np.uint64)
    out = simulate(g, pi_values)
    assert int(out[0, 0]) == 0xFFFFFFFFFFFFFF55


class TestBatchConeTruths:
    """The multi-root batch kernel must be bit-identical to cone_truth."""

    def test_matches_cone_truth_on_random_cuts(self):
        from repro.aig.simulate import batch_cone_truths
        from repro.cuts.reconv import reconv_cut

        g = random_aig(10, 300, 8, seed=3)
        cones = []
        expected = []
        for node in g.and_ids():
            cut = reconv_cut(g, node, 10, collect_features=False)
            if cut.n_leaves < 2:
                continue
            cones.append((node, tuple(cut.leaves), frozenset(cut.interior)))
            expected.append(cone_truth(g, node, cut.leaves))
        assert batch_cone_truths(g, cones) == expected

    def test_matches_after_graph_edits(self):
        # Node replacement can break ascending-id topological order; the
        # kernel's shared rank pass must still evaluate fanins first.
        from repro.aig.simulate import batch_cone_truths
        from repro.cuts.reconv import reconv_cut
        from repro.opt import refactor

        g = random_aig(10, 400, 6, seed=9)
        refactor(g)  # leaves rewired, non-monotone fanin ids behind
        cones = []
        expected = []
        for node in g.and_ids():
            cut = reconv_cut(g, node, 10, collect_features=False)
            if cut.n_leaves < 2:
                continue
            cones.append((node, tuple(cut.leaves), frozenset(cut.interior)))
            expected.append(cone_truth(g, node, cut.leaves))
        assert len(cones) > 20
        assert batch_cone_truths(g, cones) == expected

    def test_empty_batch(self):
        from repro.aig.simulate import batch_cone_truths

        g = random_aig(4, 10, 2, seed=1)
        assert batch_cone_truths(g, []) == []

    def test_leaf_limit_enforced(self):
        from repro.aig.simulate import MAX_TT_VARS, batch_cone_truths

        g = random_aig(4, 10, 2, seed=1)
        node = g.and_ids()[0]
        fake_leaves = tuple(range(1, MAX_TT_VARS + 2))
        with pytest.raises(TruthTableError):
            batch_cone_truths(g, [(node, fake_leaves, frozenset({node}))])
