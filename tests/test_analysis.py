"""Tests for t-SNE and exact Shapley values."""

import numpy as np
import pytest

from repro.analysis import (
    mean_abs_shap,
    shap_direction,
    shapley_values,
    trustworthiness,
    tsne,
)
from repro.errors import TrainingError


class TestTsne:
    def test_shapes_and_determinism(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 6))
        y1 = tsne(x, n_iter=50, seed=1)
        y2 = tsne(x, n_iter=50, seed=1)
        assert y1.shape == (60, 2)
        assert np.allclose(y1, y2)

    def test_separates_clusters(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(40, 5))
        b = rng.normal(size=(40, 5)) + 12.0
        x = np.vstack([a, b])
        y = tsne(x, n_iter=250, seed=0)
        centroid_a = y[:40].mean(axis=0)
        centroid_b = y[40:].mean(axis=0)
        spread_a = np.linalg.norm(y[:40] - centroid_a, axis=1).mean()
        gap = np.linalg.norm(centroid_a - centroid_b)
        assert gap > 2 * spread_a

    def test_trustworthiness_reasonable(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 4))
        y = tsne(x, n_iter=200, seed=0)
        assert trustworthiness(x, y, k=5) > 0.6
        # identity embedding of 2-d data is perfectly trustworthy
        x2 = rng.normal(size=(30, 2))
        assert trustworthiness(x2, x2, k=3) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(TrainingError):
            tsne(np.zeros((3, 2)))
        with pytest.raises(TrainingError):
            tsne(np.zeros(5))


class TestShap:
    def test_linear_model_recovers_coefficients(self):
        # For a linear model, Shapley value of feature j is w_j*(x_j - mean_j).
        rng = np.random.default_rng(0)
        w = np.array([1.0, -2.0, 0.0, 3.0, 0.5, -1.0])
        background = rng.normal(size=(50, 6))
        x = rng.normal(size=(8, 6))

        def predict(batch):
            return batch @ w

        phi = shapley_values(predict, x, background)
        expected = w * (x - background.mean(axis=0))
        assert np.allclose(phi, expected, atol=1e-9)

    def test_efficiency_axiom(self):
        # Shapley values sum to f(x) - f(reference).
        rng = np.random.default_rng(1)
        background = rng.normal(size=(30, 4))
        x = rng.normal(size=(5, 4))

        def predict(batch):
            return np.tanh(batch).sum(axis=1) + batch[:, 0] * batch[:, 1]

        phi = shapley_values(predict, x, background)
        reference = background.mean(axis=0)
        expected_total = predict(x) - predict(reference[None, :])
        assert np.allclose(phi.sum(axis=1), expected_total, atol=1e-9)

    def test_null_feature_gets_zero(self):
        rng = np.random.default_rng(2)
        background = rng.normal(size=(20, 3))
        x = rng.normal(size=(4, 3))

        def predict(batch):
            return batch[:, 0] * 2.0  # ignores features 1, 2

        phi = shapley_values(predict, x, background)
        assert np.allclose(phi[:, 1:], 0.0, atol=1e-12)

    def test_summaries(self):
        phi = np.array([[1.0, 2.0], [-1.0, -2.0]])
        assert np.allclose(mean_abs_shap(phi), [1.0, 2.0])
        x = np.array([[1.0, 0.0], [-1.0, 1.0]])
        directions = shap_direction(phi, x)
        assert directions[0] > 0.99  # phi tracks x positively
        assert directions[1] < -0.99  # phi falls as x rises

    def test_validation(self):
        with pytest.raises(TrainingError):
            shapley_values(lambda b: b.sum(axis=1), np.zeros((2, 3)), np.zeros((2, 4)))
