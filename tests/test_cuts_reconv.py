"""Tests for reconvergence-driven cut computation and ELF features."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, cone_truth, lit_node, lit_not
from repro.cuts import CutFeatures, reconv_cut, stack_features

from .util import random_aig


def test_cut_of_simple_and():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    g.add_po(x)
    cut = reconv_cut(g, lit_node(x))
    assert sorted(cut.leaves) == sorted([lit_node(a), lit_node(b)])
    assert cut.interior == {lit_node(x)}
    assert cut.size == 1


def test_cut_respects_leaf_limit():
    g = random_aig(8, 80, 4, seed=3)
    for node in g.and_ids():
        cut = reconv_cut(g, node, max_leaves=6)
        assert 2 <= cut.n_leaves <= 6


def test_cut_covers_root():
    """Every path from the root downward must terminate at a leaf."""
    g = random_aig(8, 80, 4, seed=5)
    for node in g.and_ids()[:30]:
        cut = reconv_cut(g, node, max_leaves=8)
        leaves = set(cut.leaves)
        stack = [node]
        seen = set()
        while stack:
            top = stack.pop()
            if top in leaves or top in seen:
                continue
            seen.add(top)
            assert g.is_and(top), "hit a PI that is not a leaf"
            assert top in cut.interior
            f0, f1 = g.fanin_lits(top)
            stack.extend([lit_node(f0), lit_node(f1)])
        assert seen == cut.interior


def test_cut_truth_table_computable():
    g = random_aig(8, 60, 4, seed=7)
    for node in g.and_ids()[:20]:
        cut = reconv_cut(g, node, max_leaves=10)
        tt = cone_truth(g, node, cut.leaves)
        assert 0 <= tt < (1 << (1 << cut.n_leaves))


def test_features_paper_figure2_style():
    """Hand-built cone checking each feature against manual counts."""
    g = AIG()
    a, b, c, d = (g.add_pi() for _ in range(4))
    n1 = g.add_and(a, b)
    n2 = g.add_and(b, c)
    n3 = g.add_and(n1, n2)
    n4 = g.add_and(n2, d)
    root = g.add_and(n3, n4)
    g.add_po(root)
    g.add_po(n1)  # n1 has an external edge
    cut = reconv_cut(g, lit_node(root), max_leaves=4)
    f = cut.features
    assert f is not None
    assert sorted(cut.leaves) == [lit_node(x) for x in (a, b, c, d)]
    assert cut.interior == {lit_node(x) for x in (n1, n2, n3, n4, root)}
    assert f.n_leaves == 4
    assert f.cut_size == 5
    assert f.root_fanout == 1  # one PO use
    assert f.root_level == 3
    # Outgoing edges: root->PO, n1->PO. All other edges are internal.
    assert f.cut_fanout == 2
    # b feeds n1 and n2; n2 feeds n3 and n4: two reconvergent nodes.
    assert f.n_reconvergent == 2


def test_root_fanout_counts_all_edges():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    z = g.add_and(x, lit_not(c))
    g.add_po(y)
    g.add_po(z)
    g.add_po(x)
    cut = reconv_cut(g, lit_node(x))
    assert cut.features.root_fanout == 3  # two AND fanouts + one PO


def test_features_cut_fanout_no_double_count():
    """Every cut's fanout equals the brute-force recount."""
    g = random_aig(8, 100, 5, seed=11)
    for node in g.and_ids():
        cut = reconv_cut(g, node, max_leaves=8)
        expected = 0
        for inner in cut.interior:
            expected += len([f for f in g.fanouts(inner) if f not in cut.interior])
            expected += len(g.po_uses(inner))
        assert cut.features.cut_fanout == expected, f"node {node}"


def test_features_reconvergence_brute_force():
    g = random_aig(6, 60, 3, seed=13)
    for node in g.and_ids():
        cut = reconv_cut(g, node, max_leaves=8)
        expected = 0
        for candidate in set(cut.leaves) | cut.interior:
            edges = sum(
                1
                for fanout in g.fanouts(candidate)
                if fanout in cut.interior
            )
            if edges >= 2:
                expected += 1
        assert cut.features.n_reconvergent == expected, f"node {node}"


def test_stack_features_shape():
    g = random_aig(6, 40, 3, seed=1)
    feats = [reconv_cut(g, n).features for n in g.and_ids()]
    matrix = stack_features(feats)
    assert matrix.shape == (len(feats), 6)
    assert stack_features([]).shape == (0, 6)


def test_features_skippable():
    g = random_aig(5, 20, 2, seed=2)
    cut = reconv_cut(g, g.and_ids()[-1], collect_features=False)
    assert cut.features is None


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(4, 10))
def test_cut_properties_random(seed, max_leaves):
    g = random_aig(7, 50, 3, seed=seed)
    ids = g.and_ids()
    if not ids:
        return
    node = ids[seed % len(ids)]
    cut = reconv_cut(g, node, max_leaves=max_leaves)
    assert node in cut.interior
    assert cut.n_leaves <= max_leaves
    assert not (set(cut.leaves) & cut.interior)
    # Leaves must not be above the root.
    assert all(g.level(leaf) <= g.level(node) for leaf in cut.leaves)
