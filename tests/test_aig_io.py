"""Tests for AIGER and BENCH file I/O."""

import pytest

from repro.aig import check
from repro.aig import io_aiger, io_bench
from repro.errors import AigerFormatError, BenchFormatError

from .util import po_truth_tables, random_aig


@pytest.mark.parametrize("writer", [io_aiger.write_ascii, io_aiger.write_binary])
def test_aiger_roundtrip(tmp_path, writer):
    g = random_aig(6, 60, 5, seed=4)
    path = tmp_path / "net.aig"
    writer(g, path)
    h = io_aiger.read(path)
    assert h.n_pis == g.n_pis
    assert h.n_pos == g.n_pos
    assert po_truth_tables(h) == po_truth_tables(g)
    check(h)


def test_aiger_ascii_header_and_symbols(tmp_path):
    g = random_aig(3, 5, 2, seed=0)
    g._pi_names[0] = "clk_enable"
    path = tmp_path / "net.aag"
    io_aiger.write_ascii(g, path)
    text = path.read_text()
    assert text.startswith("aag ")
    assert "i0 clk_enable" in text
    h = io_aiger.read(path)
    assert h.pi_name(0) == "clk_enable"


def test_aiger_rejects_garbage(tmp_path):
    path = tmp_path / "bad.aig"
    path.write_text("not an aiger file")
    with pytest.raises(AigerFormatError):
        io_aiger.read(path)


def test_aiger_rejects_latches(tmp_path):
    path = tmp_path / "latch.aag"
    path.write_text("aag 1 0 1 0 0\n2 2\n")
    with pytest.raises(AigerFormatError):
        io_aiger.read(path)


def test_bench_roundtrip(tmp_path):
    g = random_aig(5, 40, 4, seed=8)
    path = tmp_path / "net.bench"
    io_bench.write(g, path)
    h = io_bench.read(path)
    assert po_truth_tables(h) == po_truth_tables(g)
    check(h)


def test_bench_reads_rich_gates(tmp_path):
    path = tmp_path / "rich.bench"
    path.write_text(
        """
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
OUTPUT(gg)
t1 = NAND(a, b, c)
t2 = XOR(a, b)
f = OR(t1, t2)
gg = NOT(c)
"""
    )
    g = io_bench.read(path)
    assert g.n_pis == 3
    assert g.n_pos == 2
    tts = po_truth_tables(g)
    va, vb, vc = 0xAA, 0xCC, 0xF0
    mask = 0xFF
    assert tts[0] == ((~(va & vb & vc) | (va ^ vb)) & mask)
    assert tts[1] == (~vc & mask)


def test_bench_out_of_order_definitions(tmp_path):
    path = tmp_path / "ooo.bench"
    path.write_text(
        "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(t, b)\nt = OR(a, b)\n"
    )
    g = io_bench.read(path)
    assert g.n_ands >= 1


def test_bench_rejects_undefined_signal(tmp_path):
    path = tmp_path / "bad.bench"
    path.write_text("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n")
    with pytest.raises(BenchFormatError):
        io_bench.read(path)


def test_bench_rejects_unknown_gate(tmp_path):
    path = tmp_path / "bad2.bench"
    path.write_text("INPUT(a)\nOUTPUT(f)\nf = MAJ3(a, a, a)\n")
    with pytest.raises(BenchFormatError):
        io_bench.read(path)
