"""Tests for the baseline refactor operator.

The load-bearing property: refactor must preserve the network function
(checked exhaustively / by SAT) while never increasing the AND count.
"""

import pytest

from repro.aig import AIG, check, lit_node, lit_not
from repro.circuits.arith import adder, divider, multiplier
from repro.opt import RefactorParams, RefactorStats, refactor
from repro.verify import equivalent

from .util import random_aig


def run_and_verify(g, params=None):
    reference = g.clone()
    before = g.n_ands
    stats = refactor(g, params)
    check(g)
    assert equivalent(reference, g), "refactor changed the function"
    assert g.n_ands <= before, "refactor increased the node count"
    return stats, before


def test_redundant_sop_is_compacted():
    # f = ab + ac + ad: 7 ANDs naively; factoring gives a(b+c+d): 3 ANDs.
    g = AIG()
    a, b, c, d = (g.add_pi() for _ in range(4))
    ab = g.add_and(a, b)
    ac = g.add_and(a, c)
    ad = g.add_and(a, d)
    f = g.add_or(g.add_or(ab, ac), ad)
    g.add_po(f)
    stats, before = run_and_verify(g)
    assert stats.commits >= 1
    assert g.n_ands < before


def test_duplicate_logic_collapses():
    # Same function built twice with different structure, then combined.
    g = AIG()
    a, b, c = (g.add_pi() for _ in range(3))
    left = g.add_and(g.add_and(a, b), c)
    right = g.add_and(a, g.add_and(b, c))
    g.add_po(g.add_or(left, right))  # = abc
    run_and_verify(g)
    assert g.n_ands <= 3


@pytest.mark.parametrize("seed", range(12))
def test_random_graphs_preserved(seed):
    g = random_aig(6, 60, 4, seed=seed)
    stats, _ = run_and_verify(g)
    assert stats.nodes_visited > 0
    assert stats.commits + stats.fails == stats.cuts_formed


@pytest.mark.parametrize("seed", [100, 200, 300])
def test_larger_random_graphs_preserved(seed):
    g = random_aig(10, 300, 6, seed=seed)
    run_and_verify(g)


def test_adder_preserved():
    g = adder(6)
    run_and_verify(g)


def test_multiplier_preserved():
    g = multiplier(4)
    run_and_verify(g)


def test_divider_preserved():
    g = divider(4)
    run_and_verify(g)


def test_gain_total_matches_node_delta():
    g = random_aig(8, 150, 5, seed=42)
    before = g.n_ands
    stats = refactor(g)
    # Commits shrink; cascades may shrink more than predicted, never less.
    assert before - g.n_ands >= stats.commits * 0  # sanity
    assert before - g.n_ands == stats.gain_total


def test_second_pass_finds_less():
    g = random_aig(8, 200, 5, seed=7)
    s1 = refactor(g)
    s2 = refactor(g)
    assert s2.commits <= s1.commits


def test_zero_cost_mode_does_not_grow():
    g = random_aig(7, 100, 4, seed=3)
    reference = g.clone()
    before = g.n_ands
    refactor(g, RefactorParams(zero_cost=True))
    check(g)
    assert g.n_ands <= before
    assert equivalent(reference, g)


def test_preserve_levels_never_deepens():
    for seed in range(5):
        g = random_aig(7, 120, 5, seed=seed)
        depth_before = g.max_level()
        reference = g.clone()
        refactor(g, RefactorParams(preserve_levels=True))
        check(g)
        assert g.max_level() <= depth_before
        assert equivalent(reference, g)


def test_collector_sees_every_visited_node():
    g = random_aig(7, 120, 4, seed=9)
    records = []
    stats = refactor(g, collector=lambda feats, label: records.append((feats, label)))
    assert len(records) == stats.nodes_visited
    labels = [label for _f, label in records]
    assert sum(labels) == stats.commits
    for feats, _label in records:
        assert feats is not None
        assert feats.n_leaves >= 2
        assert feats.cut_size >= 1


def test_failure_rate_is_high_on_arithmetic():
    """The paper's core observation: most cuts fail resynthesis."""
    g = multiplier(6)
    stats = refactor(g)
    assert stats.failure_rate > 0.8


def test_timing_buckets_populated():
    g = random_aig(7, 100, 4, seed=5)
    stats = refactor(g)
    assert stats.time_total > 0
    assert stats.time_cut > 0
    assert stats.time_resynth > 0
    parts = stats.time_cut + stats.time_truth + stats.time_resynth + stats.time_commit
    assert parts <= stats.time_total * 1.05


def test_max_leaves_parameter():
    g = random_aig(8, 150, 4, seed=11)
    reference = g.clone()
    refactor(g, RefactorParams(max_leaves=6))
    assert equivalent(reference, g)


def test_method_good_factor():
    g = random_aig(7, 100, 4, seed=13)
    reference = g.clone()
    refactor(g, RefactorParams(method="good"))
    check(g)
    assert equivalent(reference, g)


def test_stats_dataclass_defaults():
    s = RefactorStats()
    assert s.fails == 0
    assert s.failure_rate == 0.0
