"""Tests for the conflict-aware parallel refactoring engine."""

import numpy as np
import pytest

from repro.aig.mffc import mffc_nodes
from repro.circuits import layered_random_aig
from repro.cuts.reconv import reconv_cut
from repro.elf import ElfClassifier
from repro.engine import (
    Candidate,
    EngineParams,
    EngineStats,
    ResynthExecutor,
    build_conflict_graph,
    color_waves,
    engine_refactor,
    resynthesize_batch,
)
from repro.errors import ReproError
from repro.ml import MLP
from repro.opt import RefactorParams, refactor, run_flow
from repro.verify import equivalent
from repro.verify.cec import exhaustive_pi_patterns

from .util import po_truth_tables, random_aig


def constant_classifier(keep_everything=True):
    model = MLP((6, 2, 1), seed=0)
    for w in model.weights:
        w[:] = 0.0
    model.biases[-1][:] = 10.0 if keep_everything else -10.0
    return ElfClassifier(model, threshold=0.5)


def snapshot_candidates(g, max_leaves=10):
    """The engine's phase-1 snapshot, reproduced for white-box tests."""
    candidates = []
    for node in g.and_ids():
        cut = reconv_cut(g, node, max_leaves, collect_features=False)
        if cut.n_leaves < 2:
            continue
        candidates.append(
            Candidate(
                node=node,
                leaves=tuple(cut.leaves),
                interior=frozenset(cut.interior),
                mffc=frozenset(mffc_nodes(g, node, boundary=set(cut.leaves))),
            )
        )
    return candidates


class TestConflictGraph:
    def test_waves_are_mffc_disjoint(self):
        g = layered_random_aig(12, 600, seed=5)
        candidates = snapshot_candidates(g)
        adjacency, n_edges = build_conflict_graph(candidates)
        waves = color_waves(adjacency)
        assert n_edges > 0  # a dense circuit must have real conflicts
        for wave in waves:
            for pos, i in enumerate(wave):
                for j in wave[pos + 1 :]:
                    assert not (candidates[i].mffc & candidates[j].mffc), (
                        candidates[i].node,
                        candidates[j].node,
                    )

    def test_waves_partition_candidates(self):
        g = random_aig(8, 200, 6, seed=2)
        candidates = snapshot_candidates(g)
        adjacency, _ = build_conflict_graph(candidates)
        waves = color_waves(adjacency)
        flat = sorted(i for wave in waves for i in wave)
        assert flat == list(range(len(candidates)))

    def test_conflicting_pair_separated(self):
        g = random_aig(8, 200, 6, seed=3)
        candidates = snapshot_candidates(g)
        adjacency, _ = build_conflict_graph(candidates)
        waves = color_waves(adjacency)
        color_of = {}
        for color, wave in enumerate(waves):
            for i in wave:
                color_of[i] = color
        for i, neighbors in enumerate(adjacency):
            for j in neighbors:
                assert color_of[i] != color_of[j]

    def test_footprint_covers_cone_and_mffc(self):
        c = Candidate(
            node=9,
            leaves=(2, 3),
            interior=frozenset({9, 7}),
            mffc=frozenset({9, 8}),
        )
        assert c.footprint == {2, 3, 7, 8, 9}


class TestWorkersOneParity:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_identical_to_sequential_refactor(self, seed):
        g = random_aig(10, 500, 10, seed=seed)
        sequential, engine = g.clone(), g.clone()
        seq_stats = refactor(sequential)
        eng_stats = engine_refactor(engine, EngineParams(workers=1))
        assert eng_stats.delegated
        assert engine.n_ands == sequential.n_ands
        assert engine.max_level() == sequential.max_level()
        assert eng_stats.commits == seq_stats.commits
        assert eng_stats.fails == seq_stats.fails

    def test_zero_cost_and_levels_delegate_too(self):
        g = layered_random_aig(10, 400, seed=9)
        params = RefactorParams(zero_cost=True, preserve_levels=True)
        sequential, engine = g.clone(), g.clone()
        refactor(sequential, params)
        engine_refactor(engine, EngineParams(refactor=params, workers=1))
        assert engine.n_ands == sequential.n_ands

    def test_classifier_delegates_to_elf(self):
        from repro.elf import ElfParams, elf_refactor

        g = layered_random_aig(10, 400, seed=8)
        clf = constant_classifier(True)
        sequential, engine = g.clone(), g.clone()
        elf_refactor(sequential, clf, ElfParams())
        stats = engine_refactor(engine, EngineParams(workers=1), classifier=clf)
        assert stats.delegated
        assert engine.n_ands == sequential.n_ands


class TestWaveEngine:
    def test_equivalent_and_close_to_sequential(self):
        g = layered_random_aig(12, 1200, seed=21)
        sequential, engine = g.clone(), g.clone()
        seq_stats = refactor(sequential)
        eng_stats = engine_refactor(engine, EngineParams(workers=2))
        assert not eng_stats.delegated
        assert eng_stats.n_waves > 1
        assert equivalent(g, engine, method="exhaustive")
        diff = abs(engine.n_ands - sequential.n_ands) / max(1, sequential.n_ands)
        assert diff <= 0.02, (engine.n_ands, sequential.n_ands)
        assert eng_stats.commits > 0
        assert seq_stats.commits > 0

    def test_stats_are_consistent(self):
        g = layered_random_aig(12, 800, seed=13)
        stats = engine_refactor(g, EngineParams(workers=2))
        assert isinstance(stats, EngineStats)
        assert stats.nodes_visited == stats.commits + stats.fails + stats.pruned
        assert stats.n_unique_tasks <= stats.n_tasks
        assert stats.n_waves == 0 or stats.n_candidates > 0
        assert stats.time_total > 0

    def test_classifier_prunes_in_waves(self):
        g = layered_random_aig(12, 600, seed=4)
        stats = engine_refactor(
            g.clone(), EngineParams(workers=2), classifier=constant_classifier(False)
        )
        assert stats.commits == 0
        assert stats.pruned > 0
        assert stats.n_tasks == 0  # nothing survives to resynthesis

        keep = g.clone()
        stats_keep = engine_refactor(
            keep, EngineParams(workers=2), classifier=constant_classifier(True)
        )
        assert stats_keep.pruned == 0
        assert stats_keep.commits > 0
        assert equivalent(g, keep, method="exhaustive")

    def test_preserve_levels_respected(self):
        g = layered_random_aig(12, 800, seed=6)
        level_before = g.max_level()
        engine_refactor(
            g, EngineParams(refactor=RefactorParams(preserve_levels=True), workers=2)
        )
        assert g.max_level() <= level_before

    @pytest.mark.slow
    def test_acceptance_5k_nodes_workers_4(self):
        """Acceptance: >= 5k-node synthetic AIG, engine at 4 workers is
        CEC-equivalent and within 2% of sequential refactor's AND count."""
        g = layered_random_aig(14, 5500, seed=11)
        assert g.n_ands >= 5000
        sequential, engine = g.clone(), g.clone()
        refactor(sequential)
        stats = engine_refactor(engine, EngineParams(workers=4))
        assert stats.workers == 4
        assert stats.n_waves > 1
        assert equivalent(g, engine)  # auto -> exact exhaustive simulation
        diff = abs(engine.n_ands - sequential.n_ands) / sequential.n_ands
        assert diff <= 0.02, (engine.n_ands, sequential.n_ands)


class TestParallelExecutor:
    def test_pool_matches_in_process(self):
        from repro.aig.simulate import cone_truth

        g = layered_random_aig(12, 300, seed=7)
        tasks = [
            (cone_truth(g, c.node, list(c.leaves)), len(c.leaves))
            for c in snapshot_candidates(g)[:40]
        ]
        params = RefactorParams()
        inline = resynthesize_batch(tasks, params)
        with ResynthExecutor(2, params) as executor:
            pooled = executor.run(tasks)
        assert pooled == inline

    def test_empty_and_single_worker(self):
        params = RefactorParams()
        with ResynthExecutor(1, params) as executor:
            assert executor.in_process
            assert executor.run([]) == []
            assert executor.run([(0b1000, 2)]) == resynthesize_batch(
                [(0b1000, 2)], params
            )

    def test_unknown_transport_rejected(self):
        with pytest.raises(ReproError, match="transport"):
            ResynthExecutor(2, RefactorParams(), transport="carrier-pigeon")


@pytest.fixture
def two_cores(monkeypatch):
    """Force ``will_pool`` past the single-core guard of this container."""
    import repro.engine.parallel as parallel

    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)


class TestSharedMemoryTransport:
    """The packed-wave shm transport: bit-identical, leak-free, crash-safe."""

    def test_transports_are_bench_identical_and_leak_free(self, two_cores):
        from repro import obs
        from repro.aig.io_bench import to_text
        from repro.engine.pack import leaked_segments

        obs.reset()
        before = leaked_segments()
        g = layered_random_aig(12, 700, seed=7)
        outputs = {}
        for transport in ("shm", "pickle"):
            out = g.clone()
            engine_refactor(out, EngineParams(workers=2, transport=transport))
            outputs[transport] = to_text(out)
        assert outputs["shm"] == outputs["pickle"]
        assert equivalent(g, out)
        reg = obs.metrics()
        created = reg.value("engine_shm_segments_created_total")
        assert created > 0
        assert created == reg.value("engine_shm_segments_unlinked_total")
        # Descriptor messages are a fraction of the pickled task lists
        # even on this deliberately small graph (production-size waves
        # reduce further; test_single_wave_bytes_reduction pins that).
        shm_bytes = reg.value("engine_task_bytes_total", transport="shm")
        pickle_bytes = reg.value("engine_task_bytes_total", transport="pickle")
        assert shm_bytes < 0.5 * pickle_bytes
        assert leaked_segments() == before

    def test_single_wave_bytes_reduction(self, two_cores):
        """One realistic wave ships >= 80% fewer serialized bytes on shm."""
        import random

        from repro import obs
        from repro.aig.simulate import full_mask

        obs.reset()
        rng = random.Random(13)
        tasks = [(rng.getrandbits(1 << 10) & full_mask(10), 10) for _ in range(200)]
        params = RefactorParams()
        results = {}
        for transport in ("shm", "pickle"):
            with ResynthExecutor(2, params, transport=transport) as executor:
                assert executor.will_pool(len(tasks))
                results[transport] = executor.run(tasks)
        assert results["shm"] == results["pickle"]
        reg = obs.metrics()
        shm_bytes = reg.value("engine_task_bytes_total", transport="shm")
        pickle_bytes = reg.value("engine_task_bytes_total", transport="pickle")
        assert shm_bytes <= 0.2 * pickle_bytes, (shm_bytes, pickle_bytes)

    def test_worker_crash_leaves_no_segments(self, two_cores, monkeypatch):
        import os as _os

        from repro import obs
        import repro.engine.parallel as parallel
        from repro.engine.pack import leaked_segments

        obs.reset()
        obs.configure(enabled=True)
        try:
            before = leaked_segments()
            parent_pid = _os.getpid()
            real = parallel.resynthesize_batch

            def flaky(batch, batch_params):
                # Dies only inside worker processes; the parent's
                # chunk-level recompute (same body) succeeds.
                if _os.getpid() != parent_pid:
                    raise RuntimeError("injected worker crash")
                return real(batch, batch_params)

            # Patch before the pool forks so workers inherit the crash.
            monkeypatch.setattr(parallel, "resynthesize_batch", flaky)
            g = layered_random_aig(12, 700, seed=7)
            out = g.clone()
            engine_refactor(out, EngineParams(workers=2, transport="shm"))
            assert equivalent(g, out)
            reg = obs.metrics()
            assert reg.value("engine_worker_chunks_failed_total") > 0
            created = reg.value("engine_shm_segments_created_total")
            assert created > 0
            assert created == reg.value("engine_shm_segments_unlinked_total")
            assert leaked_segments() == before
        finally:
            obs.configure(enabled=False)


class TestFlowCommands:
    def test_pf_command(self):
        g = layered_random_aig(12, 500, seed=1)
        out, report = run_flow(g.clone(), "pf -w 2")
        assert equivalent(g, out, method="exhaustive")
        assert out.n_ands <= g.n_ands
        assert isinstance(report.steps[0].detail, EngineStats)

    def test_pelf_command_requires_classifier(self):
        g = random_aig(6, 60, 3, seed=1)
        with pytest.raises(ReproError):
            run_flow(g, "pelf")

    def test_pelf_command(self):
        g = layered_random_aig(12, 500, seed=2)
        out, report = run_flow(
            g.clone(), "pelf -w 2", classifier=constant_classifier(True)
        )
        assert equivalent(g, out, method="exhaustive")
        assert isinstance(report.steps[0].detail, EngineStats)

    def test_pfz_preserve_levels_variant(self):
        g = layered_random_aig(12, 400, seed=3)
        out, _ = run_flow(g.clone(), "pfz -l -w 2")
        assert equivalent(g, out, method="exhaustive")

    def test_bad_workers_flag(self):
        g = random_aig(6, 60, 3, seed=1)
        with pytest.raises(ReproError):
            run_flow(g, "pf -w")
        with pytest.raises(ReproError):
            run_flow(g, "pf -w x")


class TestExhaustiveSimCec:
    def test_patterns_match_truth_table_order(self):
        from repro.aig.simulate import var_mask

        n = 8
        patterns = exhaustive_pi_patterns(n)
        for var in range(n):
            packed = 0
            for w in range(patterns.shape[1]):
                packed |= int(patterns[var, w]) << (64 * w)
            assert packed == var_mask(var, n)

    def test_exhaustive_sim_agrees_with_tables(self):
        g = random_aig(13, 250, 8, seed=5)  # 13 PIs: beyond the table path
        h = g.clone()
        refactor(h)
        assert equivalent(g, h, method="exhaustive-sim")
        assert po_truth_tables(g) == po_truth_tables(h)

    def test_exhaustive_sim_catches_difference(self):
        g = random_aig(13, 250, 8, seed=6)
        h = g.clone()
        # Flip one PO's phase: a guaranteed functional difference.
        h.set_po(0, h.pos[0] ^ 1)
        assert not equivalent(g, h, method="exhaustive-sim")


class TestPipelineIntegration:
    def test_compare_reports_engine_row(self):
        from repro.elf import compare

        g = layered_random_aig(12, 500, seed=14)
        row = compare(g, constant_classifier(True), engine_workers=2)
        assert row.engine_workers == 2
        assert row.engine_runtime > 0
        assert row.engine_ands > 0
        assert row.engine_stats is not None
        assert row.engine_speedup > 0
        # Without the flag the engine columns stay absent.
        row_plain = compare(g, constant_classifier(True))
        assert row_plain.engine_workers == 0
        assert row_plain.engine_stats is None
        assert row_plain.engine_speedup == 0.0

    def test_engine_scaling_rows(self):
        from repro.harness import engine_scaling

        g = layered_random_aig(12, 500, seed=15)
        rows = engine_scaling(g, workers_list=(1, 2))
        assert [r.workers for r in rows] == [0, 1, 2]
        assert rows[0].speedup == 1.0
        assert rows[1].n_ands == rows[0].n_ands  # workers=1 delegates
        for row in rows[1:]:
            assert row.runtime > 0 and row.speedup > 0


def crafted_stale_circuit(n=10):
    """Interleaved xor/majority towers sharing leaves: early-wave commits
    restructure shared cones, forcing cross-wave snapshot invalidation."""
    from repro.aig.graph import AIG

    g = AIG("crafted-stale")
    xs = [g.add_pi(f"x{i}") for i in range(n)]
    carry = xs[0]
    for i in range(1, n):
        s = g.add_xor(carry, xs[i])
        maj = g.add_or(g.add_and(carry, xs[i]), g.add_and(s, xs[(i + 1) % n]))
        t = g.add_xor(s, maj)
        carry = g.add_or(g.add_and(t, s), g.add_and(maj, xs[i - 1]))
        g.add_po(t, f"t{i}")
    g.add_po(carry, "carry")
    return g


class TestIncrementalResnapshot:
    """Cross-wave invalidation: the re-snapshot pipeline that replaced the
    sequential fallback."""

    def test_crafted_staleness_is_resnapshotted_not_replayed(self):
        g = crafted_stale_circuit(10)
        eng = g.clone()
        stats = engine_refactor(eng, EngineParams(workers=2))
        assert stats.n_stale == 0  # the fallback path no longer exists
        assert stats.n_resnapshotted > 0  # staleness really occurred
        assert stats.n_invalidated >= stats.n_resnapshotted
        assert equivalent(g, eng, method="exhaustive")

    def test_incremental_path_is_deterministic_bench_identical(self):
        from repro.aig.io_bench import to_text

        g = crafted_stale_circuit(10)
        first, second = g.clone(), g.clone()
        s1 = engine_refactor(first, EngineParams(workers=2))
        s2 = engine_refactor(second, EngineParams(workers=2))
        assert s1.n_resnapshotted == s2.n_resnapshotted > 0
        assert to_text(first) == to_text(second)

    def test_quality_tracks_sequential_on_stale_heavy_circuit(self):
        g = layered_random_aig(12, 1500, seed=33)
        sequential, eng = g.clone(), g.clone()
        refactor(sequential)
        stats = engine_refactor(eng, EngineParams(workers=2))
        assert stats.n_stale == 0
        assert stats.n_resnapshotted > 0
        assert equivalent(g, eng, method="exhaustive")
        diff = abs(eng.n_ands - sequential.n_ands) / max(1, sequential.n_ands)
        assert diff <= 0.02, (eng.n_ands, sequential.n_ands)

    def test_stats_invariants_with_repair_waves(self):
        g = layered_random_aig(12, 1000, seed=17)
        stats = engine_refactor(g, EngineParams(workers=2))
        assert stats.nodes_visited == stats.commits + stats.fails + stats.pruned
        assert stats.n_waves >= stats.n_repair_waves
        assert 0.0 <= stats.resnapshot_rate <= 1.0
        assert stats.n_cache_hits >= 0 and stats.n_npn_hits >= 0

    def test_candidate_index_invalidation_lookup(self):
        from repro.engine import CandidateIndex

        c0 = Candidate(node=9, leaves=(2, 3), interior=frozenset({9, 7}), mffc=frozenset({9}))
        c1 = Candidate(node=12, leaves=(4, 5), interior=frozenset({12}), mffc=frozenset({12}))
        index = CandidateIndex()
        index.add(0, c0)
        index.add(1, c1)
        pending = {0, 1}
        assert index.invalidated({7}, pending) == {0}
        assert index.invalidated({4}, pending) == {1}  # leaf death counts
        assert index.invalidated({99}, pending) == set()
        assert index.invalidated({7, 4}, {1}) == {1}  # pending-filtered


class TestResynthCache:
    def test_exact_entries_are_bit_identical(self):
        from repro.engine import ResynthCache
        from repro.opt.refactor import _resynthesize

        params = RefactorParams()
        cache = ResynthCache()
        entry = _resynthesize(0b1000_0110_0110_1000, 4, params, cache)
        again = _resynthesize(0b1000_0110_0110_1000, 4, params, cache)
        assert entry == again
        assert cache.hits_exact >= 1

    def test_npn_view_remaps_class_hits_functionally(self):
        import random

        from repro.aig.simulate import full_mask
        from repro.engine import ResynthCache
        from repro.opt.refactor import _resynthesize

        params = RefactorParams()
        full = full_mask(4)
        cache = ResynthCache()
        view = cache.npn_view()
        rng = random.Random(7)
        for _ in range(120):
            tt = rng.randrange(1 << 16)
            entry = view.get((tt, 4))
            if entry is None:
                entry = _resynthesize(tt, 4, params, None)
                view[(tt, 4)] = entry
            tree, inverted = entry
            assert tree.eval_tt(4) ^ (full if inverted else 0) == tt
        assert cache.hits_npn > 0
        assert cache.hits_exact + cache.hits_npn + cache.misses == 120

    def test_exact_handle_never_serves_npn(self):
        from repro.engine import ResynthCache
        from repro.opt.refactor import _resynthesize

        cache = ResynthCache()
        view = cache.npn_view()
        # Stored through the NPN view (the wave path), so the canonical
        # table is populated; a base-handle store skips canonization.
        view[(0x6666, 4)] = _resynthesize(0x6666, 4, RefactorParams(), None)
        assert cache.get((0x9999, 4)) is None  # NPN-equivalent, exact miss
        assert view.get((0x9999, 4)) is not None
        # The remap lives in the view's overlay only: the exact handle
        # must still miss, or sequential sharers would observe
        # NPN-derived trees and lose their bit-identity guarantee.
        assert cache.get((0x9999, 4)) is None
        assert (0x9999, 4) not in cache
        # A second view does not inherit the first view's overlay but can
        # re-derive the remap from the shared canonical table.
        assert cache.npn_view().get((0x9999, 4)) is not None

    def test_flow_level_cache_keeps_sequential_flows_bit_identical(self):
        from repro.aig.io_bench import to_text

        g = layered_random_aig(12, 600, seed=5)
        flowed, _report = run_flow(g.clone(), "rf; rfz")
        manual = g.clone()
        refactor(manual)
        refactor(manual, RefactorParams(zero_cost=True))
        assert to_text(flowed) == to_text(manual)

    def test_engine_shares_cache_across_passes(self):
        from repro.engine import ResynthCache

        g = layered_random_aig(12, 800, seed=19)
        cache = ResynthCache()
        eng = g.clone()
        engine_refactor(eng, EngineParams(workers=2, resynth_cache=cache))
        warm = len(cache)
        assert warm > 0
        stats2 = engine_refactor(eng, EngineParams(workers=2, resynth_cache=cache))
        assert stats2.n_cache_hits > 0  # second pass starts warm
