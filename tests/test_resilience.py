"""Fault-tolerance battery: worker death, hangs, deadlines, degradation.

Every recovery path the resilience layer promises is driven here
deterministically through the fault-injection registry
(:mod:`repro.resilience.faults`) — no real flakiness is required to test
flakiness handling.  The invariants pinned throughout:

* recovery is **transparent**: results are bit-identical to a clean run
  on every path (retry, transport degradation, sequential floor);
* recovery is **clean**: zero ``/dev/shm`` segments survive any failure;
* recovery is **counted**: the obs registry carries exact death / retry /
  degradation / deadline counters, asserted to the integer.

The container runs on one core, so pooled tests monkeypatch
``cpu_count`` (the ``two_cores`` fixture) exactly like the engine tests.
"""

import os
import random
import threading

import numpy as np
import pytest

import repro.engine.parallel as parallel
from repro import obs
from repro.circuits.random_aig import layered_random_aig
from repro.engine import EngineParams, engine_refactor
from repro.engine.pack import PackedTasks, WaveSegment, leaked_segments, unlink_by_name
from repro.engine.parallel import ResynthExecutor, resynthesize_batch
from repro.errors import (
    DeadlineExceeded,
    FatalError,
    ReproError,
    RetryableError,
    WorkerCrashError,
)
from repro.opt.refactor import RefactorParams
from repro.opt.session import OptSession
from repro.resilience import (
    DEGRADATION_LADDER,
    Deadline,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    next_rung,
)
from repro.resilience import faults
from repro.serve.pool import SharedClassifierService
from repro.serve.stream import ServeParams, serve_suite
from repro.verify.cec import equivalent


@pytest.fixture(autouse=True)
def clean_slate():
    """Fresh fault registry + metrics registry around every test."""
    faults.clear()
    obs.reset()
    yield
    faults.clear()
    obs.configure(enabled=False)


@pytest.fixture
def two_cores(monkeypatch):
    """Pretend the host has two cores so ``will_pool`` admits the pool."""
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)


def _resynth_tasks(n=200, leaves=10, seed=13):
    from repro.aig.simulate import full_mask

    rng = random.Random(seed)
    return [(rng.getrandbits(1 << leaves) & full_mask(leaves), leaves) for _ in range(n)]


class FakeClock:
    """Deterministic monotonic clock: +1.0 "second" per read."""

    def __init__(self, start=0.0, step=1.0):
        self.t = start
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


# --------------------------------------------------------------------------
# Error taxonomy
# --------------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(RetryableError, ReproError)
        assert issubclass(FatalError, ReproError)
        assert issubclass(WorkerCrashError, RetryableError)
        assert issubclass(InjectedFault, RetryableError)
        assert not issubclass(FatalError, RetryableError)

    def test_deadline_exceeded_payload(self):
        error = DeadlineExceeded("late", site="engine.wave")
        assert error.site == "engine.wave"
        assert error.partial is None
        assert error.report is None
        assert isinstance(error, ReproError)


# --------------------------------------------------------------------------
# Deadline unit behavior
# --------------------------------------------------------------------------


class TestDeadline:
    def test_unlimited(self):
        deadline = Deadline()
        assert deadline.unlimited
        assert not deadline.expired
        assert deadline.remaining() == float("inf")
        assert deadline.bound(7.5) == 7.5
        deadline.check("anywhere")  # never raises

    def test_fake_clock_expiry_by_call_count(self):
        deadline = Deadline(3.0, clock=FakeClock())  # expires at t=4.0
        assert not deadline.expired  # t=2
        assert not deadline.expired  # t=3
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("unit.site")  # t=4 -> expired
        assert excinfo.value.site == "unit.site"
        assert "unit.site" in str(excinfo.value)

    def test_bound_clips_to_remaining(self):
        deadline = Deadline(10.0, clock=FakeClock())  # expires at t=11
        # Second read at t=2: 9 seconds remain, so 30 clips to 9.
        assert deadline.bound(30.0) == pytest.approx(9.0)
        assert deadline.bound(0.5) == pytest.approx(0.5)

    def test_remaining_clamps_at_zero(self):
        deadline = Deadline(0.5, clock=FakeClock())
        assert deadline.remaining() == 0.0
        assert deadline.bound(10.0) == 0.0


# --------------------------------------------------------------------------
# Retry policy + degradation ladder
# --------------------------------------------------------------------------


class TestRetryPolicy:
    def test_budget_is_zero_based(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(0)
        assert policy.allows(1)
        assert not policy.allows(2)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_s=0.05, backoff_factor=2.0, max_backoff_s=0.15)
        assert policy.backoff(0) == pytest.approx(0.05)
        assert policy.backoff(1) == pytest.approx(0.10)
        assert policy.backoff(2) == pytest.approx(0.15)  # capped
        assert policy.backoff(10) == pytest.approx(0.15)

    def test_ladder_moves_right_only(self):
        assert DEGRADATION_LADDER == ("shm", "pickle", "sequential")
        assert next_rung("shm") == "pickle"
        assert next_rung("pickle") == "sequential"
        assert next_rung("sequential") == "sequential"  # the floor holds
        assert next_rung("auto") == "pickle"  # unknowns sit at the top


# --------------------------------------------------------------------------
# Fault spec grammar + registry
# --------------------------------------------------------------------------


class TestFaultSpecs:
    def test_parse_full_grammar(self):
        spec = FaultSpec.parse("worker.chunk=delay(0.25)@2,4#chunk=7")
        assert spec.site == "worker.chunk"
        assert spec.action == "delay"
        assert spec.value == pytest.approx(0.25)
        assert spec.hits == frozenset({2, 4})
        assert spec.match == ("chunk", "7")

    def test_parse_minimal(self):
        spec = FaultSpec.parse("shm.create=raise")
        assert spec.hits == frozenset()
        assert spec.match is None

    @pytest.mark.parametrize(
        "text", ["", "nosite", "a=explode", "a=raise@x", "a=kill#=3"]
    )
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ReproError):
            FaultSpec.parse(text)

    def test_hits_and_match_filtering(self):
        spec = FaultSpec.parse("s=raise@2#k=1")
        assert not spec.triggers(1, {"k": 1})  # wrong hit
        assert not spec.triggers(2, {"k": 9})  # wrong match
        assert not spec.triggers(2, {})  # match key absent
        assert spec.triggers(2, {"k": 1})  # string-compared

    def test_plan_fires_raise_and_counts(self):
        plan = faults.install("unit.site=raise@2")
        plan.fire("unit.site")  # hit 1: no trigger
        with pytest.raises(InjectedFault):
            plan.fire("unit.site")  # hit 2
        plan.fire("unit.site")  # hit 3: no trigger
        assert plan.arrivals("unit.site") == 3
        assert (
            obs.metrics().value(
                "faults_injected_total", site="unit.site", action="raise"
            )
            == 1
        )

    def test_inactive_fire_is_noop(self):
        faults.fire("anywhere")  # no plan installed: must not raise

    def test_env_adoption_once(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "env.site=raise")
        faults.clear()  # forget the explicit-install override
        with pytest.raises(InjectedFault):
            faults.fire("env.site")
        monkeypatch.setenv(faults.ENV_VAR, "env.site=raise;other=raise")
        faults.fire("other")  # env was adopted once; changes are ignored

    def test_injected_contextmanager_restores(self):
        outer = faults.install("outer=raise")
        with faults.injected("inner=raise"):
            faults.fire("outer")  # inner plan replaced the outer one
            with pytest.raises(InjectedFault):
                faults.fire("inner")
        assert faults.active() is outer
        faults.clear()

    def test_kill_without_pid_context_raises(self):
        spec = FaultSpec.parse("s=kill")
        plan = FaultPlan(specs=(spec,))
        with pytest.raises(ReproError):
            plan.fire("s")


# --------------------------------------------------------------------------
# Worker-death recovery (the tentpole), driven through injection
# --------------------------------------------------------------------------


class TestWorkerDeathRecovery:
    def test_kill_ladder_exact_counters_and_bit_identity(self, two_cores):
        """A worker SIGKILLed on every attempt walks the whole ladder.

        Round 1 (shm) loses chunk 0 to a death -> retry 1 degrades the
        transport to pickle; rounds 2 and 3 die the same way; the retry
        budget (2) exhausts and the lost chunk lands on the sequential
        floor.  Results stay bit-identical throughout and every decision
        is counted exactly.
        """
        tasks = _resynth_tasks()
        params = RefactorParams()
        expected = resynthesize_batch(tasks, params)
        before = leaked_segments()
        with faults.injected("worker.chunk=kill#chunk=0"):
            with ResynthExecutor(
                2, params, transport="shm", chunk_timeout_s=1.0
            ) as executor:
                assert executor.will_pool(len(tasks))
                out = executor.run(tasks)
                assert executor.in_process  # budget exhausted: floor is sticky
        assert out == expected
        reg = obs.metrics()
        assert reg.value("engine_worker_deaths_total") == 3
        assert reg.value("engine_retries_total") == 2
        assert reg.value("engine_degradations_total", to="pickle") == 1
        assert reg.value("engine_degradations_total", to="sequential") == 1
        assert reg.value("engine_worker_hangs_total") == 0
        assert leaked_segments() == before

    def test_lost_result_retries_only_lost_chunks(self, two_cores):
        """A single lost chunk result recovers in one retry round.

        ``chunk.result=raise@1`` drops exactly the first chunk wait in
        the parent; the worker was healthy, so the retry round re-ships
        only that chunk and succeeds — one retry, zero deaths.
        """
        tasks = _resynth_tasks()
        params = RefactorParams()
        expected = resynthesize_batch(tasks, params)
        with faults.injected("chunk.result=raise@1"):
            with ResynthExecutor(
                2, params, transport="shm", chunk_timeout_s=5.0
            ) as executor:
                out = executor.run(tasks)
                assert not executor.in_process  # pool survived
        assert out == expected
        reg = obs.metrics()
        assert reg.value("engine_retries_total") == 1
        assert reg.value("engine_worker_deaths_total") == 0
        # The failed round rode shm, so the retry stepped to pickle.
        assert reg.value("engine_degradations_total", to="pickle") == 1
        assert reg.value("engine_degradations_total", to="sequential") == 0
        assert (
            reg.value("engine_chunk_failures_total", reason="InjectedFault") == 1
        )

    def test_hung_worker_detected_and_floored(self, two_cores):
        """A hung (alive but stalled) worker is a hang, not a death."""
        tasks = _resynth_tasks()
        params = RefactorParams()
        expected = resynthesize_batch(tasks, params)
        with faults.injected("worker.chunk=delay(30)#chunk=1"):
            with ResynthExecutor(
                2,
                params,
                transport="pickle",
                chunk_timeout_s=0.4,
                retry_policy=RetryPolicy(max_retries=1, backoff_s=0.01),
            ) as executor:
                out = executor.run(tasks)
        assert out == expected
        reg = obs.metrics()
        # At least the stalled chunk per round; on a time-sliced single
        # CPU a healthy-but-slow chunk may blow the tight timeout too,
        # so the hang count is a floor, not an exact figure.
        assert reg.value("engine_worker_hangs_total") >= 2
        assert reg.value("engine_worker_deaths_total") == 0
        assert reg.value("engine_retries_total") == 1
        assert reg.value("engine_degradations_total", to="sequential") == 1

    def test_pool_creation_fault_degrades_in_process(self, two_cores):
        """Pool creation failure is a counted, logged, in-process fallback."""
        tasks = _resynth_tasks(n=64)
        params = RefactorParams()
        expected = resynthesize_batch(tasks, params)
        with faults.injected("worker.start=raise"):
            with ResynthExecutor(2, params) as executor:
                out = executor.run(tasks)
                assert executor.in_process
        assert out == expected
        reg = obs.metrics()
        assert (
            reg.value("engine_pool_fallbacks_total", reason="InjectedFault") == 1
        )
        assert reg.value("engine_worker_deaths_total") == 0
        assert reg.value("engine_retries_total") == 0

    def test_shm_create_fault_falls_back_to_pickle(self, two_cores):
        """Segment-creation failure reroutes the round over pickle."""
        tasks = _resynth_tasks()
        params = RefactorParams()
        expected = resynthesize_batch(tasks, params)
        before = leaked_segments()
        with faults.injected("shm.create=raise"):
            with ResynthExecutor(2, params, transport="shm") as executor:
                out = executor.run(tasks)
        assert out == expected
        reg = obs.metrics()
        assert reg.value("engine_shm_fallbacks_total") == 1
        assert reg.value("engine_shm_segments_created_total") == 0
        assert reg.value("engine_task_bytes_total", transport="pickle") > 0
        assert reg.value("engine_retries_total") == 0
        assert leaked_segments() == before

    def test_close_sweeps_segments_the_unlink_missed(self):
        """A segment name still registered at close() is swept."""
        packed = PackedTasks.pack(_resynth_tasks(n=8))
        segment = WaveSegment.create(packed)
        name = segment.descriptor()[0]
        segment.close()  # mapping dropped, /dev/shm entry still live
        executor = ResynthExecutor(2, RefactorParams())
        executor._live_segments.add(name)
        executor.close()
        assert not unlink_by_name(name)  # already gone: the sweep got it
        reg = obs.metrics()
        assert reg.value("engine_shm_segments_swept_total") == 1

    def test_unlink_by_name_missing_segment(self):
        assert not unlink_by_name("psm_no_such_segment_xyz")


class TestEngineWideRecovery:
    """Worker death mid-wave, through the full engine pass."""

    def test_mid_wave_kill_is_transparent(self, two_cores):
        g = layered_random_aig(12, 700, seed=7)
        from repro.aig.io_bench import to_text

        clean = g.clone()
        with ResynthExecutor(2, RefactorParams(), chunk_timeout_s=5.0) as executor:
            engine_refactor(clean, EngineParams(executor=executor))

        before = leaked_segments()
        faulted = g.clone()
        # Lose one chunk result in the parent mid-pass: the engine's
        # executor retries it; the pass output must not change.
        with faults.injected("chunk.result=raise@1"):
            with ResynthExecutor(
                2, RefactorParams(), chunk_timeout_s=5.0
            ) as executor:
                engine_refactor(faulted, EngineParams(executor=executor))
        assert to_text(faulted) == to_text(clean)
        assert equivalent(g, faulted)
        assert obs.metrics().value("engine_retries_total") == 1
        assert leaked_segments() == before

    def test_mid_wave_sigkill_is_transparent(self, two_cores):
        """SIGKILL a pool worker mid-wave; the pass result is unchanged."""
        g = layered_random_aig(12, 700, seed=7)
        from repro.aig.io_bench import to_text

        clean = g.clone()
        with ResynthExecutor(2, RefactorParams(), chunk_timeout_s=5.0) as executor:
            engine_refactor(clean, EngineParams(executor=executor))

        before = leaked_segments()
        faulted = g.clone()
        with faults.injected("worker.chunk=kill@1#chunk=0"):
            with ResynthExecutor(
                2,
                RefactorParams(),
                chunk_timeout_s=1.0,
                retry_policy=RetryPolicy(max_retries=2, backoff_s=0.01),
            ) as executor:
                engine_refactor(faulted, EngineParams(executor=executor))
        assert to_text(faulted) == to_text(clean)
        assert equivalent(g, faulted)
        reg = obs.metrics()
        assert reg.value("engine_worker_deaths_total") >= 1
        assert reg.value("engine_retries_total") >= 1
        assert leaked_segments() == before


# --------------------------------------------------------------------------
# Deadlines through the stack
# --------------------------------------------------------------------------


class TestDeadlinePropagation:
    def test_flow_deadline_yields_consistent_prefix(self):
        g = layered_random_aig(12, 700, seed=7)
        deadline = Deadline(5.0, clock=FakeClock())
        with OptSession(engine_workers=1) as session:
            with pytest.raises(DeadlineExceeded) as excinfo:
                session.run(g.clone(), "b; rw; rf; rw; rf", deadline=deadline)
        error = excinfo.value
        assert error.partial is not None
        assert error.report is not None
        # The completed steps are a strict prefix of the script.
        done = [step.command for step in error.report.steps]
        assert 0 < len(done) < 5
        assert done == ["b", "rw", "rf", "rw", "rf"][: len(done)]
        # The partial is a valid network, CEC-clean against the input.
        assert equivalent(g, error.partial)

    def test_engine_wave_deadline_mid_pass(self, two_cores):
        g = layered_random_aig(12, 700, seed=7)
        out = g.clone()
        # Generous fake budget: survives session/prep reads, expires
        # across the wave loop's checks.
        deadline = Deadline(60.0, clock=FakeClock())
        with pytest.raises(DeadlineExceeded):
            engine_refactor(out, EngineParams(workers=2, deadline=deadline))
        # Commits are serial: whatever prefix landed is consistent.
        assert equivalent(g, out)
        assert obs.metrics().value("engine_deadline_exceeded_total") == 1

    def test_expired_deadline_refuses_sequential_delegation(self):
        g = layered_random_aig(10, 120, seed=4)
        deadline = Deadline(0.0, clock=FakeClock())
        with pytest.raises(DeadlineExceeded):
            engine_refactor(g, EngineParams(workers=1, deadline=deadline))

    def test_executor_sequential_floor_checks_deadline(self):
        tasks = _resynth_tasks(n=32)
        deadline = Deadline(2.0, clock=FakeClock())
        with ResynthExecutor(1, RefactorParams()) as executor:
            with pytest.raises(DeadlineExceeded) as excinfo:
                executor.run(tasks, deadline=deadline)
        assert excinfo.value.site == "executor.sequential"

    def test_serve_circuit_timeout_keeps_valid_prefix(self):
        suite = {
            "a": layered_random_aig(10, 150, seed=1),
            "b": layered_random_aig(10, 150, seed=2),
        }
        from repro.aig.io_bench import to_text

        # A zero budget expires before the first step: every circuit
        # comes back valid-but-unoptimized, flagged, and counted.
        report = serve_suite(
            suite,
            ServeParams(flow="b; rf", n_shards=1, circuit_timeout_s=0.0),
        )
        assert report.ok  # a blown budget is degradation, not an error
        for result in report.results:
            assert result.deadline_exceeded
            assert result.bench_text == to_text(suite[result.name])
        assert obs.metrics().value("serve_deadline_exceeded_total") == 2

        # Without a budget the same serve completes normally.
        report = serve_suite(suite, ServeParams(flow="b; rf", n_shards=1))
        assert report.ok
        assert not any(r.deadline_exceeded for r in report.results)


# --------------------------------------------------------------------------
# Shared classifier service: failed rounds are survivable
# --------------------------------------------------------------------------


class _FlakyClassifier:
    """fused_keep_masks raises on scripted call numbers, succeeds after."""

    threshold = 0.5

    def __init__(self, fail_calls=(1,)):
        self.fail_calls = set(fail_calls)
        self.calls = 0

    def fused_keep_masks(self, batches):
        self.calls += 1
        if self.calls in self.fail_calls:
            raise RuntimeError("model backend unavailable")
        return [np.ones(b.shape[0], dtype=bool) for b in batches]


class TestClassifierRoundFailure:
    def test_failed_round_delivers_error_and_recovers(self):
        service = SharedClassifierService(_FlakyClassifier(), ["c0"])
        client = service.client("c0")
        features = np.zeros((3, 6))
        with pytest.raises(RuntimeError):
            client.keep_mask(features)  # round 1: backend down
        # Round 2 fuses normally: pending state was reset, not poisoned.
        mask = client.keep_mask(features)
        assert mask.tolist() == [True, True, True]
        client.finish()
        assert service.stats.n_calls == 1  # only the good round recorded
        assert (
            obs.metrics().value("serve_classifier_round_failures_total") == 1
        )

    def test_failed_round_releases_every_waiter(self):
        """Both circuits of a fused round get the error; neither hangs."""
        service = SharedClassifierService(_FlakyClassifier(), ["c0", "c1"])
        outcomes = {}

        def circuit(name):
            client = service.client(name)
            features = np.zeros((2, 6))
            try:
                client.keep_mask(features)
                outcomes[name] = "ok"
            except RuntimeError:
                outcomes[name] = "error"
            finally:
                client.finish()

        threads = [
            threading.Thread(target=circuit, args=(n,)) for n in ("c0", "c1")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)  # barrier released
        assert outcomes == {"c0": "error", "c1": "error"}

    def test_injected_classifier_fault_site(self):
        service = SharedClassifierService(_FlakyClassifier(fail_calls=()), ["c0"])
        client = service.client("c0")
        features = np.zeros((2, 6))
        with faults.injected("classifier.fire=raise@1"):
            with pytest.raises(InjectedFault):
                client.keep_mask(features)
            mask = client.keep_mask(features)  # round 2 unaffected
        assert mask.shape == (2,)
        client.finish()
        assert (
            obs.metrics().value("serve_classifier_round_failures_total") == 1
        )


# --------------------------------------------------------------------------
# Fused serving still completes under engine faults (isolation)
# --------------------------------------------------------------------------


class TestServeUnderFaults:
    def test_pool_fallback_does_not_fail_serving(self, two_cores):
        """Serving degrades to in-process execution when no pool forks."""
        suite = {
            "a": layered_random_aig(10, 150, seed=1),
            "b": layered_random_aig(10, 150, seed=2),
        }
        clean = serve_suite(suite, ServeParams(flow="rf", n_shards=1, workers=1))
        with faults.injected("worker.start=raise"):
            faulted = serve_suite(
                suite, ServeParams(flow="pf", n_shards=1, workers=2)
            )
        assert faulted.ok
        for result in faulted.results:
            assert equivalent(suite[result.name], result.graph)
        assert clean.ok
