"""Tests for algebraic division and kernel extraction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factor import (
    divide_by_cube,
    divide_by_literal,
    kernels,
    most_frequent_literal,
    quick_divisor,
    weak_div,
)
from repro.tt import (
    cube_from_lits,
    isop_exact,
    lit_index,
    sop_is_cube_free,
    sop_tt,
)


def cube(*pairs):
    return cube_from_lits([lit_index(v, neg) for v, neg in pairs])


# F = ab + ac + ad  (classic example)
F_CLASSIC = [
    cube((0, False), (1, False)),
    cube((0, False), (2, False)),
    cube((0, False), (3, False)),
]


def test_divide_by_literal():
    q, r = divide_by_literal(F_CLASSIC, lit_index(0, False))
    assert len(q) == 3 and not r
    assert q == [cube((1, False)), cube((2, False)), cube((3, False))]


def test_divide_by_cube():
    q, r = divide_by_cube(F_CLASSIC, cube((0, False), (1, False)))
    assert q == [0]  # quotient is the constant-one cube
    assert len(r) == 2


def test_weak_div_textbook():
    # F = ac + ad + bc + bd + e; D = a + b -> Q = c + d, R = e.
    F = [
        cube((0, False), (2, False)),
        cube((0, False), (3, False)),
        cube((1, False), (2, False)),
        cube((1, False), (3, False)),
        cube((4, False)),
    ]
    D = [cube((0, False)), cube((1, False))]
    Q, R = weak_div(F, D)
    assert sorted(Q) == sorted([cube((2, False)), cube((3, False))])
    assert R == [cube((4, False))]


def test_weak_div_algebraic_identity():
    """F == Q*D + R as truth tables (containment holds for weak division)."""
    n = 5
    F = [
        cube((0, False), (2, False)),
        cube((0, False), (3, False)),
        cube((1, False), (2, False)),
        cube((4, False)),
    ]
    D = [cube((0, False)), cube((1, False))]
    Q, R = weak_div(F, D)
    product = [q | d for q in Q for d in D]
    assert sop_tt(product + R, n) == sop_tt(F, n)


def test_weak_div_empty_divisor():
    Q, R = weak_div(F_CLASSIC, [])
    assert Q == [] and R == F_CLASSIC


def test_most_frequent_literal():
    lit, count = most_frequent_literal(F_CLASSIC)
    assert lit == lit_index(0, False)
    assert count == 3
    assert most_frequent_literal([]) == (-1, 0)


def test_quick_divisor_classic():
    d = quick_divisor(F_CLASSIC)
    assert d is not None
    assert sop_is_cube_free(d)
    assert sorted(d) == sorted(
        [cube((1, False)), cube((2, False)), cube((3, False))]
    )


def test_quick_divisor_none_cases():
    assert quick_divisor([cube((0, False))]) is None  # single cube
    # No literal appears twice.
    assert quick_divisor([cube((0, False)), cube((1, False))]) is None


def test_kernels_textbook():
    # F = ace + bce + de + g  (De Micheli's running example)
    F = [
        cube((0, False), (2, False), (4, False)),
        cube((1, False), (2, False), (4, False)),
        cube((3, False), (4, False)),
        cube((6, False)),
    ]
    ks = kernels(F)
    kernel_sets = [tuple(sorted(k)) for k, _ in ks]
    # a + b is a kernel (co-kernel ce)
    ab = tuple(sorted([cube((0, False)), cube((1, False))]))
    assert ab in kernel_sets
    # ac + bc + d is a kernel (co-kernel e)
    acbcd = tuple(
        sorted(
            [
                cube((0, False), (2, False)),
                cube((1, False), (2, False)),
                cube((3, False)),
            ]
        )
    )
    assert acbcd in kernel_sets
    # every kernel is cube-free
    for k, _co in ks:
        assert sop_is_cube_free(k)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 2**16 - 1))
def test_quick_divisor_on_isop_covers(tt):
    """quick_divisor output is always cube-free and divides the SOP."""
    cubes = isop_exact(tt, 4)
    d = quick_divisor(cubes)
    if d is None:
        return
    assert sop_is_cube_free(d)
    Q, R = weak_div(cubes, d)
    assert Q, "divisor must divide the SOP non-trivially"
    product = [q | dd for q in Q for dd in d]
    assert sop_tt(product + R, 4) == sop_tt(cubes, 4)
