"""Tests for traversals and required levels."""

from repro.aig import (
    AIG,
    RequiredLevels,
    cone_nodes,
    levels_histogram,
    lit_node,
    support,
    topological_order,
    transitive_fanin,
    transitive_fanout,
)

from .util import random_aig


def test_topological_order_contract():
    g = random_aig(5, 30, 3, seed=2)
    order = topological_order(g)
    position = {node: i for i, node in enumerate(order)}
    for node in order:
        for fl in g.fanin_lits(node):
            fanin = lit_node(fl)
            if g.is_and(fanin):
                assert position[fanin] < position[node]


def test_transitive_fanin_includes_support():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    g.add_po(y)
    tfi = transitive_fanin(g, [lit_node(y)])
    assert lit_node(x) in tfi
    assert lit_node(a) in tfi and lit_node(c) in tfi
    tfi_no_pi = transitive_fanin(g, [lit_node(y)], include_pis=False)
    assert lit_node(a) not in tfi_no_pi


def test_transitive_fanout():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    z = g.add_and(x, lit_node(c) * 2 + 1)
    g.add_po(y)
    g.add_po(z)
    tfo = transitive_fanout(g, [lit_node(x)])
    assert tfo == {lit_node(x), lit_node(y), lit_node(z)}


def test_cone_nodes_excludes_leaves():
    g = AIG()
    a, b, c, d = (g.add_pi() for _ in range(4))
    x = g.add_and(a, b)
    y = g.add_and(c, d)
    z = g.add_and(x, y)
    g.add_po(z)
    nx, ny, nz = lit_node(x), lit_node(y), lit_node(z)
    assert cone_nodes(g, nz, {nx, ny}) == [nz]
    assert cone_nodes(g, nz, {nx}) == sorted([ny, nz])
    assert cone_nodes(g, nz, set()) == sorted([nx, ny, nz])


def test_support():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    g.add_po(x)
    assert support(g, lit_node(x)) == {lit_node(a), lit_node(b)}
    assert lit_node(c) not in support(g, lit_node(x))


def test_required_levels_chain():
    g = AIG()
    a, b, c, d = (g.add_pi() for _ in range(4))
    x = g.add_and(a, b)  # level 1
    y = g.add_and(x, c)  # level 2
    z = g.add_and(y, d)  # level 3
    g.add_po(z)
    req = RequiredLevels(g)
    assert req.depth == 3
    assert req.required(lit_node(z)) == 3
    assert req.required(lit_node(y)) == 2
    assert req.required(lit_node(x)) == 1
    assert not req.is_stale


def test_required_levels_slack_off_critical_path():
    g = AIG()
    a, b, c, d, e = (g.add_pi() for _ in range(5))
    deep = g.add_and(g.add_and(g.add_and(a, b), c), d)  # level 3
    shallow = g.add_and(a, e)  # level 1, off critical path
    g.add_po(deep)
    g.add_po(shallow)
    req = RequiredLevels(g)
    assert req.required(lit_node(shallow)) == 3  # can sink to depth


def test_required_levels_staleness():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    g.add_po(x)
    req = RequiredLevels(g)
    g.add_and(a, lit_node(b) * 2 + 1)
    assert req.is_stale


def test_levels_histogram():
    g = AIG()
    a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
    x = g.add_and(a, b)
    y = g.add_and(x, c)
    g.add_po(y)
    assert levels_histogram(g) == {1: 1, 2: 1}
