"""Tests for the experiment harness: caching, tables, drivers."""

import numpy as np
import pytest

from repro.circuits import random_aig
from repro.harness import (
    cached_classifier,
    cached_dataset,
    format_table,
    suite_statistics,
)
from repro.harness.experiments import feature_matrix, suite_datasets
from repro.ml import CutDataset


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def small_suite():
    return {
        f"g{i}": random_aig(7, 120, 4, seed=i, name=f"g{i}") for i in (1, 2)
    }


def test_format_table():
    text = format_table(["a", "bb"], [[1, 2.5], ["x", 10000]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "2.50" in text
    assert "10,000" in text


def test_cached_dataset_roundtrip():
    calls = []

    def build():
        calls.append(1)
        return CutDataset(np.zeros((4, 6)), np.zeros(4), "x")

    d1 = cached_dataset("unit_test_key", build)
    d2 = cached_dataset("unit_test_key", build)
    assert len(calls) == 1  # second call served from disk
    assert len(d1) == len(d2) == 4


def test_cached_classifier_roundtrip():
    from repro.elf import ElfClassifier
    from repro.ml import MLP

    calls = []

    def build():
        calls.append(1)
        return ElfClassifier(MLP(seed=3), threshold=0.7)

    c1 = cached_classifier("unit_clf", build)
    c2 = cached_classifier("unit_clf", build)
    assert len(calls) == 1
    assert c2.threshold == c1.threshold == 0.7


def test_suite_statistics_and_datasets():
    suite = small_suite()
    rows = suite_statistics(suite)
    assert len(rows) == 2
    for row in rows:
        assert row.n_ands > 0
        assert 0 <= row.refactored_pct <= 100
    datasets = suite_datasets(suite, "unit")
    assert set(datasets) == set(suite)
    for name, ds in datasets.items():
        assert len(ds) > 0


def test_feature_matrix_keeps_positives():
    datasets = {
        "a": CutDataset(
            np.arange(60).reshape(10, 6).astype(float),
            np.array([1, 1, 0, 0, 0, 0, 0, 0, 0, 0], dtype=float),
            "a",
        )
    }
    x, y = feature_matrix(datasets, max_per_design=5)
    assert (y > 0.5).sum() == 2  # all positives retained
    assert len(x) >= 5
