"""Shared helpers for the test suite."""

from __future__ import annotations

import random

from repro.aig import AIG, cone_truth, full_mask, lit_node


def po_truth_tables(g: AIG) -> list[int]:
    """Exhaustive truth table (Python int) of every PO over the PIs.

    Only usable for small networks (#PIs <= 16).
    """
    pis = g.pis
    ones = full_mask(len(pis))
    tables = []
    for lit in g.pos:
        tt = cone_truth(g, lit_node(lit), pis)
        if lit & 1:
            tt ^= ones
        tables.append(tt)
    return tables


def random_aig(
    n_pis: int,
    n_ands: int,
    n_pos: int,
    seed: int = 0,
    name: str = "rand",
) -> AIG:
    """Random strashed AIG for tests (connected, no dangling logic)."""
    rng = random.Random(seed)
    g = AIG(name)
    lits = [g.add_pi() for _ in range(n_pis)]
    guard = 0
    while g.n_ands < n_ands and guard < 50 * n_ands:
        guard += 1
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        lit = g.add_and(a, b)
        if lit > 1:
            lits.append(lit)
    # Drive POs with the least-referenced signals first so little is dangling.
    candidates = sorted(
        (lit for lit in lits if lit > 2 * n_pis),
        key=lambda lit: g.n_refs(lit_node(lit)),
    )
    chosen = candidates[:n_pos] if candidates else lits[:n_pos]
    while len(chosen) < n_pos:
        chosen.append(rng.choice(lits))
    for lit in chosen:
        g.add_po(lit ^ rng.randint(0, 1))
    from repro.aig import cleanup

    cleanup(g)
    return g
