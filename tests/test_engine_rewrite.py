"""Tests for the wave-rewrite operator on the generic conflict scheduler."""

import pytest

from repro.aig.graph import AIG
from repro.aig.io_bench import to_text
from repro.circuits import layered_random_aig
from repro.engine import (
    EngineStats,
    ResynthCache,
    RewriteEngineParams,
    RewriteWaveOp,
    engine_rewrite,
)
from repro.engine.operators import _cut_interior
from repro.errors import ReproError
from repro.opt import RewriteParams, default_library, rewrite, run_flow
from repro.verify import equivalent


def crafted_overlap_circuit():
    """Two conflict-free candidates whose commits nonetheless collide.

    ``r`` is redundant (``r == a & b``): rewriting it replaces it with the
    existing ``x``, and the strash cascade then merges ``f = r & w`` into
    the pre-existing duplicate ``f2 = x & w`` — a kill *outside* ``r``'s
    MFFC.  ``c``'s 4-feasible cuts stop at ``f`` (expanding it would need
    five leaves), so ``c`` shares no footprint with ``r`` and the greedy
    coloring puts both in one wave; the cascade kill of ``f`` lands in
    ``c``'s cone mid-wave, forcing the deferral + repair-wave split.
    """
    g = AIG("crafted-rw-repair")
    a = g.add_pi("a")
    b = g.add_pi("b")
    w = g.add_pi("w")
    e1 = g.add_pi("e1")
    e2 = g.add_pi("e2")
    e3 = g.add_pi("e3")
    x = g.add_and(a, b)
    r = g.add_and(x, a)  # candidate A: rewrites to x (gain 1)
    f2 = g.add_and(x, w)  # pre-existing duplicate target
    f = g.add_and(r, w)  # strash-merges into f2 when A commits
    c1 = g.add_and(f, e1)
    c2 = g.add_and(c1, e2)
    c = g.add_and(c2, e3)  # candidate B: same wave as A, cone sees f
    g.add_po(c, "out")
    g.add_po(f2, "keep")
    return g


class TestWorkersOneParity:
    @pytest.mark.parametrize("seed", [3, 13, 21])
    def test_bit_identical_to_sequential_rewrite(self, seed):
        g = layered_random_aig(12, 700, seed=seed)
        sequential, engine = g.clone(), g.clone()
        seq_stats = rewrite(sequential)
        eng_stats = engine_rewrite(engine, RewriteEngineParams(workers=1))
        assert eng_stats.delegated
        assert eng_stats.operator == "rewrite"
        assert to_text(engine) == to_text(sequential)
        assert eng_stats.commits == seq_stats.commits
        assert eng_stats.gain_total == seq_stats.gain_total
        assert eng_stats.cuts_formed == seq_stats.cuts_tried
        assert eng_stats.n_stale_cuts == seq_stats.stale_cuts

    def test_flow_prw_w1_matches_rw(self):
        g = layered_random_aig(12, 600, seed=7)
        via_flow, report = run_flow(g.clone(), "prw -w 1")
        sequential = g.clone()
        rewrite(sequential)
        assert to_text(via_flow) == to_text(sequential)
        assert isinstance(report.steps[0].detail, EngineStats)

    def test_zero_cost_delegates_too(self):
        g = layered_random_aig(10, 400, seed=9)
        params = RewriteParams(zero_cost=True)
        sequential, engine = g.clone(), g.clone()
        rewrite(sequential, params)
        engine_rewrite(engine, RewriteEngineParams(rewrite=params, workers=1))
        assert to_text(engine) == to_text(sequential)


class TestWaveRewrite:
    @pytest.mark.parametrize("seed,n_ands", [(21, 1200), (13, 800)])
    def test_cec_and_close_to_sequential(self, seed, n_ands):
        g = layered_random_aig(12, n_ands, seed=seed)
        sequential, engine = g.clone(), g.clone()
        seq_stats = rewrite(sequential)
        eng_stats = engine_rewrite(engine, RewriteEngineParams(workers=2))
        assert not eng_stats.delegated
        assert eng_stats.n_waves > 1
        assert eng_stats.commits > 0 and seq_stats.commits > 0
        assert equivalent(g, engine, method="exhaustive")
        diff = abs(engine.n_ands - sequential.n_ands) / max(1, sequential.n_ands)
        assert diff <= 0.015, (engine.n_ands, sequential.n_ands)

    def test_deterministic_bench_identical(self):
        g = layered_random_aig(12, 800, seed=13)
        first, second = g.clone(), g.clone()
        s1 = engine_rewrite(first, RewriteEngineParams(workers=2))
        s2 = engine_rewrite(second, RewriteEngineParams(workers=2))
        assert to_text(first) == to_text(second)
        assert s1.commits == s2.commits
        assert s1.n_resnapshotted == s2.n_resnapshotted

    def test_zero_cost_and_levels_variant(self):
        g = layered_random_aig(12, 500, seed=3)
        level_before = g.max_level()
        out, _report = run_flow(g.clone(), "prwz -l -w 2")
        assert equivalent(g, out, method="exhaustive")
        assert out.max_level() <= level_before

    def test_stats_consistency(self):
        g = layered_random_aig(12, 800, seed=13)
        stats = engine_rewrite(g, RewriteEngineParams(workers=2))
        assert isinstance(stats, EngineStats)
        assert stats.operator == "rewrite"
        assert stats.n_stale == 0  # no sequential fallback path exists
        assert stats.commits + stats.fail_gain <= stats.nodes_visited
        assert stats.n_unique_tasks <= stats.n_tasks
        assert stats.n_library_hits > 0  # wave dedup must hit the layer
        assert 0.0 <= stats.dedup_rate <= 1.0
        assert stats.time_total > 0

    def test_bad_workers_flag(self):
        g = layered_random_aig(8, 60, seed=1)
        with pytest.raises(ReproError):
            run_flow(g, "prw -w")

    @pytest.mark.slow
    def test_acceptance_layered_5k_workers_2(self):
        """Acceptance: on layered-5k, ``prw`` at w=2 is CEC-clean and its
        AND count lands within ±1.5% of the sequential ``rw`` sweep."""
        g = layered_random_aig(14, 5500, seed=11, name="layered-5k")
        assert g.n_ands >= 5000
        sequential, engine = g.clone(), g.clone()
        rewrite(sequential)
        stats = engine_rewrite(engine, RewriteEngineParams(workers=2))
        assert stats.workers == 2
        assert stats.n_waves > 1
        assert stats.n_stale == 0
        assert equivalent(g, engine)  # auto -> exact exhaustive simulation
        diff = abs(engine.n_ands - sequential.n_ands) / sequential.n_ands
        assert diff <= 0.015, (engine.n_ands, sequential.n_ands)


class TestRepairWaveSplitting:
    def test_crafted_overlap_forces_repair_wave(self):
        g = crafted_overlap_circuit()
        eng = g.clone()
        stats = engine_rewrite(eng, RewriteEngineParams(workers=2))
        assert stats.commits >= 1  # the redundant root really rewrites
        assert stats.n_repair_waves >= 1  # the wave split at the conflict
        assert stats.n_invalidated > 0
        assert stats.n_stale_cuts > 0  # the merged node's cut went stale
        assert stats.n_stale == 0
        assert equivalent(g, eng, method="exhaustive")

    def test_crafted_overlap_is_deterministic(self):
        first, second = crafted_overlap_circuit(), crafted_overlap_circuit()
        s1 = engine_rewrite(first, RewriteEngineParams(workers=2))
        s2 = engine_rewrite(second, RewriteEngineParams(workers=2))
        assert s1.n_repair_waves == s2.n_repair_waves >= 1
        assert to_text(first) == to_text(second)


class TestRewriteWaveOpSnapshots:
    def test_snapshot_unions_cuts_into_footprint(self):
        g = crafted_overlap_circuit()
        op = RewriteWaveOp(RewriteParams(), ResynthCache(), default_library())
        stats = EngineStats(operator="rewrite")
        op.prepare(g, stats)
        top = max(g.and_ids())  # node c: cuts reach c1/c2/f but never r
        candidate = op.snapshot(g, top, stats)
        assert candidate is not None
        assert len(candidate.payload) >= 2  # multi-cut payload
        leaves_union = set(candidate.leaves)
        for cut_leaves, interior in candidate.payload:
            assert set(cut_leaves) <= leaves_union
            assert interior <= candidate.interior
        assert candidate.node in candidate.interior
        assert candidate.mffc <= candidate.footprint

    def test_resnapshot_drops_dead_leaf_cuts(self):
        g = crafted_overlap_circuit()
        op = RewriteWaveOp(RewriteParams(), ResynthCache(), default_library())
        stats = EngineStats(operator="rewrite")
        op.prepare(g, stats)
        top = max(g.and_ids())
        candidate = op.snapshot(g, top, stats)
        n_cuts = len(candidate.payload)
        # Kill one cut leaf (an AND feeding the top): replace it with const0.
        and_leaves = [l for l in candidate.leaves if g.is_and(l)]
        g.replace(and_leaves[0], 0)
        stale_before = stats.n_stale_cuts
        fresh = op.resnapshot(g, candidate, stats)
        assert stats.n_stale_cuts > stale_before
        if fresh is not None:
            for cut_leaves, _interior in fresh.payload:
                assert all(not g.is_dead(l) for l in cut_leaves)

    def test_cut_interior_detects_uncovered_cone(self):
        g = AIG()
        a, b, c = (g.add_pi() for _ in range(3))
        x = g.add_and(a, b)
        y = g.add_and(x, c)
        g.add_po(y)
        xn, yn = x >> 1, y >> 1
        assert _cut_interior(g, yn, {a >> 1, b >> 1, c >> 1}) == {xn, yn}
        assert _cut_interior(g, yn, {xn, c >> 1}) == {yn}
        # A cut that does not cover the cone walks out to an alien PI.
        assert _cut_interior(g, yn, {a >> 1, c >> 1}) is None


class TestLibraryCacheLayer:
    def test_library_lookup_caches_and_counts(self):
        cache = ResynthCache()
        library = default_library()
        first = cache.library_lookup(0x8888, library)
        assert cache.misses_library == 1 and cache.hits_library == 0
        again = cache.library_lookup(0x8888, library)
        assert again is first  # the stored pair itself, not a re-lookup
        assert cache.hits_library == 1
        assert first == library.lookup(0x8888)

    def test_layer_is_shared_with_views(self):
        cache = ResynthCache()
        library = default_library()
        cache.library_lookup(0x6666, library)
        view = cache.npn_view()
        view.library_lookup(0x6666, library)
        assert cache.hits_library == 1  # view hit counted on the owner

    def test_flow_shares_library_layer_across_steps(self):
        g = layered_random_aig(12, 800, seed=19)
        _out, report = run_flow(g, "prw -w 2; prwz -w 2")
        first, second = (step.detail for step in report.steps)
        assert first.n_library_hits > 0
        assert second.n_library_hits > 0
        # The second pass starts warm: almost nothing is a first-time
        # canonization, so its unique-task share must not exceed the cold
        # pass's.
        assert second.n_unique_tasks <= first.n_unique_tasks


class TestServeCompatibility:
    def test_served_prw_flow_is_byte_identical_at_w1(self):
        from repro.harness import serve_throughput

        suite = {
            f"rw-{seed}": layered_random_aig(10, 300, seed=seed, name=f"rw-{seed}")
            for seed in (1, 2, 3)
        }
        rows, report = serve_throughput(
            suite, flow="b; prw; b", n_shards=2, workers=1, check_identity=True
        )
        assert len(rows) == 3
        assert all(row.error is None for row in rows)
        assert all(row.identical for row in rows)
