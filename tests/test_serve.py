"""Tests for the sharded multi-circuit serving layer (`repro.serve`)."""

import threading

import numpy as np
import pytest

from repro.aig.io_bench import to_text
from repro.elf import ElfClassifier
from repro.engine import EngineParams, ResynthExecutor, engine_refactor
from repro.errors import ReproError
from repro.harness import serve_throughput
from repro.ml import MLP
from repro.opt import RefactorParams, run_flow
from repro.serve import (
    ServeParams,
    SharedClassifierService,
    assign_shards,
    max_explicit_workers,
    needs_classifier,
    needs_engine_pool,
    serve_stream,
    serve_suite,
)
from repro.verify import equivalent

from .util import random_aig


def small_suite(n=4, seed0=40):
    return {
        f"c{i}": random_aig(7, 120 + 30 * i, 4, seed=seed0 + i, name=f"c{i}")
        for i in range(n)
    }


def nontrivial_classifier(seed=2):
    """Untrained but decision-varied classifier (no training cost)."""
    return ElfClassifier(MLP((6, 8, 1), seed=seed), threshold=0.5)


class TestShardPlan:
    def test_deterministic_and_partitioned(self):
        suite = small_suite(6)
        plan_a = assign_shards(suite, 3)
        plan_b = assign_shards(dict(reversed(list(suite.items()))), 3)
        assert plan_a.shards == plan_b.shards  # insertion order is irrelevant
        names = [n for members in plan_a.shards for n in members]
        assert sorted(names) == sorted(suite)
        assert len(names) == len(set(names))

    def test_lpt_balances_loads(self):
        suite = small_suite(8)
        cost = {name: (i + 1) * 10 for i, name in enumerate(sorted(suite))}
        plan = assign_shards(suite, 2, cost)
        loads = [plan.load(0), plan.load(1)]
        assert abs(loads[0] - loads[1]) <= max(cost.values())
        assert plan.imbalance < 1.5

    def test_shard_count_capped_at_suite_size(self):
        suite = small_suite(3)
        plan = assign_shards(suite, 10)
        assert plan.n_shards == 3
        assert all(len(members) == 1 for members in plan.shards)

    def test_shard_of_and_errors(self):
        suite = small_suite(4)
        plan = assign_shards(suite, 2)
        for name in suite:
            assert name in plan.shards[plan.shard_of(name)]
        with pytest.raises(ReproError):
            plan.shard_of("nope")
        with pytest.raises(ReproError):
            assign_shards(suite, 0)
        with pytest.raises(ReproError):
            assign_shards(suite, 2, cost={"c0": 1})  # incomplete cost map

    def test_empty_suite(self):
        plan = assign_shards({}, 4)
        assert plan.shards == ()
        assert plan.names == ()


class TestFusedClassification:
    def test_fused_equals_per_batch_bitwise(self):
        clf = nontrivial_classifier()
        rng = np.random.default_rng(0)
        # Mix of MVN-sized, small (fallback-normalized) and empty batches.
        batches = [rng.uniform(0, 12, size=(n, 6)) for n in (50, 3, 0, 17, 16)]
        masks = clf.fused_keep_masks(batches)
        probs = clf.fused_predict_proba(batches)
        assert len(masks) == len(batches)
        for batch, mask, prob in zip(batches, masks, probs):
            # Masks must agree exactly; probabilities to machine epsilon
            # (BLAS picks shape-dependent kernels, so the stacked matmul
            # can differ from the per-batch one in the last ulp).
            assert np.array_equal(clf.keep_mask(batch), mask)
            assert np.allclose(clf.predict_proba(batch), prob, rtol=0, atol=1e-12)

    def test_fused_all_empty(self):
        clf = nontrivial_classifier()
        masks = clf.fused_keep_masks([np.zeros((0, 6)), np.zeros((0, 6))])
        assert all(m.shape == (0,) for m in masks)

    def test_service_rounds_are_lockstep(self):
        clf = nontrivial_classifier()
        service = SharedClassifierService(clf, ["a", "b", "c"])
        rng = np.random.default_rng(1)
        requests = {"a": 3, "b": 1, "c": 2}  # requests per client
        received = {}

        def client_body(name):
            with service.client(name) as client:
                out = []
                for r in range(requests[name]):
                    out.append(client.keep_mask(rng.uniform(0, 5, size=(4 + r, 6))))
                received[name] = out

        threads = [
            threading.Thread(target=client_body, args=(n,)) for n in requests
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        # Round r serves the r-th request of every client still running:
        # round 1 = {a,b,c}, round 2 = {a,c}, round 3 = {a}.
        assert [r[0] for r in service.stats.rounds] == [3, 2, 1]
        assert service.stats.n_subbatches == 6
        assert service.stats.mean_occupancy == pytest.approx(2.0)
        assert service.stats.amortization == pytest.approx(0.5)
        assert all(len(received[n]) == requests[n] for n in requests)

    def test_service_propagates_classifier_errors(self):
        class Exploding:
            def fused_keep_masks(self, batches):
                raise ValueError("boom")

        service = SharedClassifierService(Exploding(), ["a", "b"])
        errors = []

        def client_body(name):
            try:
                with service.client(name) as client:
                    client.keep_mask(np.zeros((2, 6)))
            except ValueError as error:
                errors.append((name, str(error)))

        threads = [threading.Thread(target=client_body, args=(n,)) for n in "ab"]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert sorted(n for n, _ in errors) == ["a", "b"]

    def test_script_predicates(self):
        assert needs_classifier("b; elf; b")
        assert needs_classifier("pelfz -w 2")
        assert not needs_classifier("b; rw; rf")
        assert needs_engine_pool("pf; b")
        assert not needs_engine_pool("b; elf")
        assert max_explicit_workers("b; pf -w 4; pelf -w 2") == 4
        assert max_explicit_workers("pf; pelf") == 0
        assert max_explicit_workers("b; rw") == 0


class TestServeStream:
    def test_streamed_matches_blocking_runs(self):
        suite = small_suite(4)
        report = serve_suite(suite, ServeParams(flow="b; rf; b", n_shards=2))
        assert report.ok
        assert sorted(r.order for r in report.results) == [0, 1, 2, 3]
        for name, g in suite.items():
            blocking, _ = run_flow(g.clone(), "b; rf; b")
            result = report.result_of(name)
            assert result.bench_text == to_text(blocking)
            assert result.n_ands == blocking.n_ands
            assert g.n_ands == suite[name].n_ands  # inputs untouched

    def test_elf_flow_fused_serving_is_byte_identical(self):
        suite = small_suite(5)
        clf = nontrivial_classifier()
        report = serve_suite(
            suite, ServeParams(flow="b; elf; b", n_shards=2, workers=1), classifier=clf
        )
        assert report.ok
        for name, g in suite.items():
            blocking, _ = run_flow(g.clone(), "b; elf; b", classifier=clf)
            assert report.result_of(name).bench_text == to_text(blocking), name
        # Both shards hold >= 2 circuits, so fusion must actually batch.
        assert report.fusion
        for stats in report.fusion.values():
            assert stats.mean_occupancy > 1.0
            assert stats.amortization > 0.0

    def test_pelf_workers1_delegation_identical(self):
        suite = small_suite(3)
        clf = nontrivial_classifier()
        report = serve_suite(
            suite, ServeParams(flow="pelf", n_shards=2, workers=1), classifier=clf
        )
        assert report.ok
        for name, g in suite.items():
            blocking, _ = run_flow(g.clone(), "pelf", classifier=clf, engine_workers=1)
            assert report.result_of(name).bench_text == to_text(blocking), name

    def test_stream_yields_incrementally(self):
        suite = small_suite(3)
        seen = []
        for result in serve_stream(suite, ServeParams(flow="rf", n_shards=3)):
            seen.append((result.order, result.name))
        assert [order for order, _ in seen] == [0, 1, 2]
        assert sorted(name for _, name in seen) == sorted(suite)

    def test_unfused_serving_matches_fused(self):
        suite = small_suite(4)
        clf = nontrivial_classifier()
        fused = serve_suite(
            suite, ServeParams(flow="elf", n_shards=1), classifier=clf
        )
        private = serve_suite(
            suite,
            ServeParams(flow="elf", n_shards=1, fuse_classifier=False),
            classifier=clf,
        )
        assert fused.ok and private.ok
        for name in suite:
            assert (
                fused.result_of(name).bench_text == private.result_of(name).bench_text
            )
        assert fused.fusion and not private.fusion

    def test_errors_are_isolated_not_fatal(self):
        suite = small_suite(3)
        # elf without a classifier fails inside each circuit's flow; the
        # stream must still deliver one (error) result per circuit.
        report = serve_suite(suite, ServeParams(flow="b; elf", n_shards=2))
        assert not report.ok
        assert len(report.results) == 3
        for result in report.results:
            assert result.error is not None and "classifier" in result.error

    def test_classifier_failure_unblocks_whole_shard(self):
        class Exploding:
            threshold = 0.5

            def fused_keep_masks(self, batches):
                raise RuntimeError("inference backend down")

            def keep_mask(self, features):
                raise RuntimeError("inference backend down")

        suite = small_suite(3)
        report = serve_suite(
            suite, ServeParams(flow="elf", n_shards=1), classifier=Exploding()
        )
        assert len(report.results) == 3
        assert all(not r.ok for r in report.results)

    def test_engine_flow_with_shared_pool(self):
        suite = small_suite(3)
        report = serve_suite(suite, ServeParams(flow="pf", n_shards=2, workers=2))
        assert report.ok
        for name, g in suite.items():
            result = report.result_of(name)
            assert result.graph is not None
            assert equivalent(g, result.graph), name


class TestFlowServerHooks:
    def test_f_fz_aliases(self):
        g = random_aig(7, 150, 4, seed=3)
        via_alias, _ = run_flow(g.clone(), "f; fz")
        via_canonical, _ = run_flow(g.clone(), "rf; rfz")
        assert to_text(via_alias) == to_text(via_canonical)

    def test_engine_workers_default_applies(self):
        g = random_aig(7, 150, 4, seed=4)
        _, report = run_flow(g.clone(), "pf", engine_workers=1)
        assert report.steps[0].detail.workers == 1
        assert report.steps[0].detail.delegated
        # explicit -w beats the default
        _, report = run_flow(g.clone(), "pf -w 2", engine_workers=1)
        assert report.steps[0].detail.workers == 2

    def test_explicit_w_beats_shared_executor(self):
        # "pf -w 1" must stay the bit-identical sequential mode even when
        # the server provisioned a wider shared pool.
        g = random_aig(7, 150, 4, seed=6)
        with ResynthExecutor(2, RefactorParams()) as executor:
            _, report = run_flow(g.clone(), "pf -w 1", engine_executor=executor)
            assert report.steps[0].detail.workers == 1
            assert report.steps[0].detail.delegated
            # matching widths keep the shared pool
            _, report = run_flow(g.clone(), "pf -w 2", engine_executor=executor)
            assert report.steps[0].detail.workers == 2

    def test_serve_sizes_pool_for_script_pins(self):
        # A script-level "-w 2" under ServeParams(workers=1) must still be
        # served (pool pre-forked by the server, not inside a thread).
        suite = small_suite(2)
        report = serve_suite(suite, ServeParams(flow="pf -w 2", n_shards=2, workers=1))
        assert report.ok
        for name, g in suite.items():
            assert equivalent(g, report.result_of(name).graph), name

    def test_external_executor_reused_not_closed(self):
        g = random_aig(7, 200, 4, seed=5)
        with ResynthExecutor(2, RefactorParams()) as executor:
            first = g.clone()
            engine_refactor(first, EngineParams(executor=executor))
            second = g.clone()
            stats = engine_refactor(second, EngineParams(executor=executor))
            assert stats.workers == 2
            # the executor must survive both passes for further use
            assert executor.run([(0b1000, 2)])
        own = g.clone()
        engine_refactor(own, EngineParams(workers=2))
        assert to_text(own) == to_text(first) == to_text(second)
        assert equivalent(g, first)


class TestServeThroughputHarness:
    def test_rows_and_identity_audit(self):
        suite = small_suite(4)
        rows, report = serve_throughput(suite, flow="rf", n_shards=2, workers=1)
        assert len(rows) == 4
        assert sorted(row.order for row in rows) == [0, 1, 2, 3]
        assert all(row.identical is True for row in rows)
        assert all(row.error is None for row in rows)
        assert report.wall_time > 0
        assert report.circuits_per_second > 0
