"""Tests for the NumPy MLP: shapes, parameter count, backprop, fusion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrainingError
from repro.ml import MLP, PAPER_LAYERS


def test_paper_architecture_has_325_parameters():
    """The paper states 6->12->12->6->1 with 325 parameters total."""
    model = MLP(PAPER_LAYERS)
    assert model.n_parameters == 325


def test_forward_shapes():
    model = MLP((6, 4, 1), seed=1)
    x = np.random.default_rng(0).normal(size=(10, 6))
    logits = model.forward_logits(x)
    probs = model.predict_proba(x)
    assert logits.shape == (10,)
    assert probs.shape == (10,)
    assert np.all((probs > 0) & (probs < 1))


def test_forward_rejects_bad_shapes():
    model = MLP((6, 4, 1))
    with pytest.raises(TrainingError):
        model.forward_logits(np.zeros((5, 3)))
    with pytest.raises(TrainingError):
        MLP((6,))
    with pytest.raises(TrainingError):
        MLP((6, 4, 2))  # output must be a single unit


def test_xavier_init_bounds_and_zero_bias():
    model = MLP((6, 12, 1), seed=3)
    bound0 = np.sqrt(6.0 / (6 + 12))
    assert np.all(np.abs(model.weights[0]) <= bound0)
    assert np.all(model.biases[0] == 0)
    assert np.all(model.biases[1] == 0)


def test_determinism_by_seed():
    a, b = MLP(seed=7), MLP(seed=7)
    c = MLP(seed=8)
    assert all(np.array_equal(x, y) for x, y in zip(a.weights, b.weights))
    assert not all(np.array_equal(x, y) for x, y in zip(a.weights, c.weights))


def test_backprop_matches_finite_differences():
    rng = np.random.default_rng(0)
    model = MLP((3, 5, 4, 1), seed=2)
    x = rng.normal(size=(8, 3))
    y = rng.integers(0, 2, size=8).astype(float)

    def loss_value():
        logits = model.forward_logits(x)
        return float(np.mean(np.logaddexp(0, logits) - y * logits))

    inputs, logits = model.forward_cached(x)
    probs = 1 / (1 + np.exp(-logits))
    dlogits = (probs - y) / len(y)
    grad_w, grad_b = model.backprop(inputs, dlogits)

    eps = 1e-6
    for layer in range(len(model.weights)):
        w = model.weights[layer]
        for index in [(0, 0), (w.shape[0] - 1, w.shape[1] - 1)]:
            original = w[index]
            w[index] = original + eps
            up = loss_value()
            w[index] = original - eps
            down = loss_value()
            w[index] = original
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - grad_w[layer][index]) < 1e-5, (layer, index)
        b = model.biases[layer]
        original = b[0]
        b[0] = original + eps
        up = loss_value()
        b[0] = original - eps
        down = loss_value()
        b[0] = original
        numeric = (up - down) / (2 * eps)
        assert abs(numeric - grad_b[layer][0]) < 1e-5


def test_parameter_roundtrip():
    model = MLP((6, 4, 1), seed=0)
    params = model.get_parameters()
    clone = MLP((6, 4, 1), seed=99)
    clone.set_parameters([p.copy() for p in params])
    x = np.random.default_rng(1).normal(size=(5, 6))
    assert np.allclose(model.forward_logits(x), clone.forward_logits(x))


def test_copy_is_independent():
    model = MLP((6, 4, 1), seed=0)
    dup = model.copy()
    dup.weights[0][0, 0] += 1.0
    assert model.weights[0][0, 0] != dup.weights[0][0, 0]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_fused_normalization_equivalence(seed):
    """fused(raw) == raw_model((raw - mean)/std) to float precision."""
    rng = np.random.default_rng(seed)
    model = MLP((6, 5, 1), seed=seed)
    mean = rng.normal(size=6) * 10
    std = rng.uniform(0.5, 5.0, size=6)
    fused = model.fuse_normalization(mean, std)
    x = rng.normal(size=(16, 6)) * 20
    expected = model.forward_logits((x - mean) / std)
    got = fused.forward_logits(x)
    assert np.allclose(expected, got, atol=1e-9)


def test_fuse_normalization_validation():
    model = MLP((6, 5, 1))
    with pytest.raises(TrainingError):
        model.fuse_normalization(np.zeros(5), np.ones(5))
    with pytest.raises(TrainingError):
        model.fuse_normalization(np.zeros(6), np.zeros(6))
