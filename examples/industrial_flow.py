"""ELF inside a full synthesis flow on an industrial-style design.

Profiles a resyn2-style script (balance/rewrite/refactor), then swaps the
refactor steps for ELF and compares end-to-end runtime and quality —
the deployment story of the paper's Section II.

Run:  python examples/industrial_flow.py
"""

from repro.circuits import industrial_design, industrial_suite
from repro.elf import collect_dataset, train_leave_one_out
from repro.ml import TrainConfig
from repro.opt import OptSession
from repro.verify import equivalent

FLOW_BASE = "b; rw; rf; b; rfz; rw; b"
FLOW_ELF = "b; rw; elf; b; elfz; rw; b"


def main() -> None:
    target = 3
    print("collecting datasets from the other industrial designs...")
    datasets = {
        name: collect_dataset(g)
        for name, g in industrial_suite().items()
        if name != f"design_{target}"
    }
    datasets[f"design_{target}"] = collect_dataset(industrial_design(target))
    classifier = train_leave_one_out(
        datasets, f"design_{target}", TrainConfig(epochs=15)
    )

    g = industrial_design(target)
    print(f"design_{target}: {g.n_ands} ANDs, level {g.max_level()}")

    # One session per flow: a session's resynthesis cache persists across
    # its runs, and a warm start would flatter the ELF timing.
    with OptSession() as session:
        base_out, base_report = session.run(g.clone(), FLOW_BASE)
    with OptSession(classifier=classifier) as session:
        elf_out, elf_report = session.run(g.clone(), FLOW_ELF)

    print(f"\n{'step':8s} {'base s':>8s} {'elf s':>8s}")
    for bs, es in zip(base_report.steps, elf_report.steps):
        print(f"{bs.command:8s} {bs.runtime:8.2f} {es.runtime:8.2f}  ({es.command})")
    print(
        f"\nflow runtime: {base_report.total_runtime:.2f}s -> "
        f"{elf_report.total_runtime:.2f}s "
        f"({base_report.total_runtime / max(elf_report.total_runtime, 1e-9):.2f}x)"
    )
    print(
        f"quality: {base_out.n_ands} vs {elf_out.n_ands} ANDs "
        f"({100 * (elf_out.n_ands - base_out.n_ands) / base_out.n_ands:+.2f}%), "
        f"levels {base_out.max_level()} vs {elf_out.max_level()}"
    )
    assert equivalent(g, elf_out, method="sim")
    print("random-simulation equivalence check passed")


if __name__ == "__main__":
    main()
