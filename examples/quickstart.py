"""Quickstart: build a circuit, refactor it, train ELF, refactor faster.

Run:  python examples/quickstart.py
"""

import time

from repro import elf_refactor, refactor
from repro.aig import stats
from repro.circuits import multiplier, random_aig
from repro.elf import collect_dataset, train_leave_one_out
from repro.ml import TrainConfig
from repro.verify import equivalent


def main() -> None:
    # 1. Build a real circuit: a 10x10 array multiplier.
    g = multiplier(10)
    print(f"built {stats(g)}")

    # 2. Run the baseline (ABC-style) refactor operator.
    baseline = g.clone()
    t0 = time.perf_counter()
    base_stats = refactor(baseline)
    base_time = time.perf_counter() - t0
    print(
        f"baseline refactor: {base_stats.commits}/{base_stats.cuts_formed} cuts "
        f"committed ({100 * base_stats.failure_rate:.1f}% wasted), "
        f"{base_time:.2f}s, {g.n_ands} -> {baseline.n_ands} ANDs"
    )

    # 3. Train an ELF classifier on *other* circuits (never on this one).
    training = {
        f"train_{i}": collect_dataset(random_aig(10, 600, 8, seed=i))
        for i in range(3)
    }
    training["target"] = collect_dataset(g)  # held out below
    classifier = train_leave_one_out(
        training, "target", TrainConfig(epochs=10), target_recall=0.95
    )
    print(f"trained classifier: {classifier.n_parameters} parameters")

    # 4. Run ELF: same operator, but redundant cuts are pruned up front.
    pruned = g.clone()
    t0 = time.perf_counter()
    elf_stats = elf_refactor(pruned, classifier)
    elf_time = time.perf_counter() - t0
    print(
        f"ELF refactor: pruned {elf_stats.pruned}/{elf_stats.nodes_visited} nodes, "
        f"{elf_time:.2f}s ({base_time / max(elf_time, 1e-9):.2f}x speedup), "
        f"{g.n_ands} -> {pruned.n_ands} ANDs"
    )

    # 5. Safety: both results are formally equivalent to the original.
    assert equivalent(g, baseline, method="sat")
    assert equivalent(g, pruned, method="sat")
    print("equivalence checked: both optimized networks match the original")


if __name__ == "__main__":
    main()
