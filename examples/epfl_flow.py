"""The paper's EPFL experiment in miniature (Table III, one circuit).

Trains leave-one-out on five EPFL-like arithmetic circuits, deploys on
the sixth, and prints the ABC-vs-ELF comparison row.

Run:  python examples/epfl_flow.py [design]   (default: multiplier)
"""

import sys

from repro.circuits import EPFL_NAMES, epfl_suite
from repro.elf import collect_dataset, compare, train_leave_one_out
from repro.ml import TrainConfig


def main(design: str = "multiplier") -> None:
    if design not in EPFL_NAMES:
        raise SystemExit(f"unknown design {design!r}; choose from {EPFL_NAMES}")
    suite = epfl_suite("default")
    print("collecting training data (baseline refactor on every circuit)...")
    datasets = {name: collect_dataset(g) for name, g in suite.items()}
    for name, ds in datasets.items():
        print(f"  {name:11s} {len(ds):5d} cuts, {ds.n_positive:4d} refactorable "
              f"({100 * ds.imbalance:.2f}%)")

    print(f"training leave-one-out classifier (test = {design})...")
    classifier = train_leave_one_out(datasets, design, TrainConfig(epochs=20))

    print("comparing baseline refactor vs ELF...")
    row = compare(suite[design], classifier)
    print(
        f"  {row.design}: baseline {row.baseline_runtime:.2f}s -> "
        f"ELF {row.elf_runtime:.2f}s = {row.speedup:.2f}x speedup | "
        f"ANDs {row.baseline_ands} vs {row.elf_ands} ({row.and_diff_pct:+.2f}%) | "
        f"pruned {100 * row.prune_fraction:.1f}% of nodes"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "multiplier")
