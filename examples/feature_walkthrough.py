"""Figure 2 walkthrough: the six ELF features on a hand-built cut.

Builds a small cone in the style of the paper's Figure 2 and prints each
feature next to the manual count, then shows the features of real cuts
from an arithmetic circuit.

Run:  python examples/feature_walkthrough.py
"""

from repro.aig import AIG, lit_node
from repro.circuits import isqrt
from repro.cuts import FEATURE_NAMES, reconv_cut


def figure2_style_cone() -> None:
    g = AIG("fig2")
    a, b, c, d = (g.add_pi() for _ in range(4))
    n1 = g.add_and(a, b)
    n2 = g.add_and(b, c)  # b feeds n1 and n2 -> locally reconvergent
    n3 = g.add_and(n1, n2)
    n4 = g.add_and(n2, d)  # n2 feeds n3 and n4 -> locally reconvergent
    root = g.add_and(n3, n4)
    g.add_po(root)
    g.add_po(n1)  # one extra outward edge from inside the cone

    cut = reconv_cut(g, lit_node(root), max_leaves=4)
    print("hand-built cone (paper Fig. 2 style):")
    print(f"  leaves: {sorted(cut.leaves)} (the four PIs)")
    print(f"  cone interior: {sorted(cut.interior)}")
    for name, value in zip(FEATURE_NAMES, cut.features.as_tuple()):
        print(f"  {name:15s} = {value}")
    print("  (two reconvergent nodes: b and n2, matching the figure's arrows)")


def real_circuit_cuts() -> None:
    g = isqrt(8)
    print(f"\nreal cuts from {g.name} ({g.n_ands} ANDs):")
    header = " ".join(f"{n[:10]:>11s}" for n in FEATURE_NAMES)
    print(f"  {'node':>6s} {header}")
    for node in g.and_ids()[100:110]:
        cut = reconv_cut(g, node)
        values = " ".join(f"{v:11d}" for v in cut.features.as_tuple())
        print(f"  {node:6d} {values}")


if __name__ == "__main__":
    figure2_style_cone()
    real_circuit_cuts()
