"""Explainability walkthrough: Figures 3 and 4 on a trained classifier.

Embeds sampled cut features with t-SNE and computes exact Shapley values
for each of the six features.

Run:  python examples/explain_model.py
"""

import numpy as np

from repro.analysis import mean_abs_shap, shap_direction, shapley_values, tsne
from repro.circuits import epfl_suite
from repro.cuts import FEATURE_NAMES
from repro.elf import collect_dataset, train_leave_one_out
from repro.ml import TrainConfig


def main() -> None:
    suite = epfl_suite("tiny")  # tiny scale keeps this example snappy
    datasets = {name: collect_dataset(g) for name, g in suite.items()}
    classifier = train_leave_one_out(datasets, "multiplier", TrainConfig(epochs=10))

    x = np.concatenate([d.x for d in datasets.values()])
    y = np.concatenate([d.y for d in datasets.values()])
    keep = np.random.default_rng(0).permutation(len(x))[:250]
    x, y = x[keep], y[keep]

    print("computing t-SNE embedding (Figure 3)...")
    mean, std = x.mean(axis=0), np.maximum(x.std(axis=0), 1e-9)
    embedding = tsne((x - mean) / std, n_iter=200)
    spread = embedding.std(axis=0)
    print(f"  embedded {len(x)} cuts; spread = ({spread[0]:.2f}, {spread[1]:.2f}); "
          f"{int(y.sum())} refactored points")

    print("computing exact Shapley values (Figure 4)...")
    phi = shapley_values(classifier.predict_proba, x[:100], x)
    importance = mean_abs_shap(phi)
    direction = shap_direction(phi, x[:100])
    print(f"  {'feature':16s} {'mean |SHAP|':>12s} {'direction':>10s}")
    for j in np.argsort(-importance):
        arrow = "pushes toward refactor" if direction[j] > 0 else "pushes against"
        print(f"  {FEATURE_NAMES[j]:16s} {importance[j]:12.4f} {direction[j]:+10.2f}  ({arrow})")


if __name__ == "__main__":
    main()
